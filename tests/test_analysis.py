"""Tests for the experiment harness, figure registry, tables, and reporting."""

import pathlib
import re

import pytest

from repro.analysis import (
    ABLATION_BUILDERS,
    BENCH_SCALE,
    EXPERIMENT_REGISTRY,
    PAPER_SCALE,
    SMOKE_SCALE,
    AveragedMetrics,
    ExperimentSpec,
    Variant,
    all_figure_ids,
    compare_tables,
    figure_spec,
    paper_table_reports,
    parameter_table,
    render_result,
    render_series,
    render_summary,
    run_experiment,
)
from repro.core.errors import ExperimentError
from repro.core.policy import ConflictPolicy
from repro.sim.metrics import RunMetrics
from repro.sim.params import SimulationParameters


def tiny_spec(**overrides):
    base = SimulationParameters(
        database_size=40, num_terminals=30, total_completions=60, seed=2
    )
    defaults = dict(
        experiment_id="test-exp",
        title="test experiment",
        workload="readwrite",
        base_params=base,
        mpl_levels=(5, 15),
        variants=(
            Variant("commutativity", {"policy": ConflictPolicy.COMMUTATIVITY}),
            Variant("recoverability", {"policy": ConflictPolicy.RECOVERABILITY}),
        ),
        metrics=("throughput", "blocking_ratio"),
        runs=1,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def fake_metrics(throughput):
    return RunMetrics(
        simulated_time=10.0,
        completions=int(throughput * 10),
        commits=int(throughput * 10),
        pseudo_commits=0,
        response_time_total=5.0,
        blocks=3,
        restarts=1,
        cycle_checks=4,
        aborts=1,
        abort_length_total=2,
        commit_dependency_edges=0,
        events_processed=100,
    )


class TestAveragedMetrics:
    def test_from_runs_averages(self):
        averaged = AveragedMetrics.from_runs([fake_metrics(10), fake_metrics(20)])
        assert averaged.runs == 2
        assert averaged.throughput == pytest.approx(15.0)

    def test_from_zero_runs_rejected(self):
        with pytest.raises(ExperimentError):
            AveragedMetrics.from_runs([])

    def test_metric_lookup(self):
        averaged = AveragedMetrics.from_runs([fake_metrics(10)])
        assert averaged.metric("throughput") == pytest.approx(10.0)
        with pytest.raises(ExperimentError):
            averaged.metric("latency_p99")


class TestExperimentSpecValidation:
    def test_valid_spec_passes(self):
        tiny_spec().validate()

    def test_empty_levels_rejected(self):
        with pytest.raises(ExperimentError):
            tiny_spec(mpl_levels=()).validate()

    def test_duplicate_variant_labels_rejected(self):
        with pytest.raises(ExperimentError):
            tiny_spec(
                variants=(Variant("same", {}), Variant("same", {}))
            ).validate()

    def test_zero_runs_rejected(self):
        with pytest.raises(ExperimentError):
            tiny_spec(runs=0).validate()


class TestRunExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(tiny_spec())

    def test_all_points_present(self, result):
        assert set(result.points) == {"commutativity", "recoverability"}
        for label in result.points:
            assert set(result.points[label]) == {5, 15}

    def test_series_and_peak(self, result):
        series = result.series("recoverability", "throughput")
        assert [level for level, _ in series] == [5, 15]
        peak_level, peak_value = result.peak("recoverability")
        assert peak_value == max(value for _, value in series)

    def test_improvement_is_computable(self, result):
        improvement = result.improvement("recoverability", "commutativity")
        assert improvement > -1.0

    def test_unknown_variant_raises(self, result):
        with pytest.raises(ExperimentError):
            result.series("optimistic", "throughput")

    def test_progress_callback_is_invoked(self):
        lines = []
        run_experiment(tiny_spec(mpl_levels=(5,)), progress=lines.append)
        assert len(lines) == 2
        assert all("test-exp" in line for line in lines)


class TestParallelRunner:
    def test_parallel_points_match_serial_exactly(self):
        spec = tiny_spec()
        serial = run_experiment(spec, workers=1)
        parallel = run_experiment(spec, workers=2)
        assert parallel.points == serial.points

    def test_parallel_preserves_progress_ordering(self):
        serial_lines, parallel_lines = [], []
        spec = tiny_spec(mpl_levels=(5,))
        run_experiment(spec, progress=serial_lines.append, workers=1)
        run_experiment(spec, progress=parallel_lines.append, workers=2)
        assert parallel_lines == serial_lines

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment(tiny_spec(), workers=0)


class TestExperimentRegistry:
    def test_registry_covers_figures_tables_and_ablations(self):
        ids = EXPERIMENT_REGISTRY.ids()
        assert set(all_figure_ids()) <= set(ids)
        assert set(ABLATION_BUILDERS) <= set(ids)
        assert "tables" in ids
        assert len(EXPERIMENT_REGISTRY) == len(all_figure_ids()) + len(ABLATION_BUILDERS) + 1

    def test_every_benchmark_figure_module_has_a_registry_entry(self):
        """Completeness: every benchmarks/test_fig*.py id is registered."""
        benchmarks = pathlib.Path(__file__).parent.parent / "benchmarks"
        modules = sorted(benchmarks.glob("test_fig*.py"))
        assert modules, "no figure benchmark modules found"
        for module in modules:
            match = re.fullmatch(r"test_fig(\d+)(?:_(\w+))?\.py", module.name)
            assert match, module.name
            figure_id = f"figure-{int(match.group(1))}"
            if match.group(2):
                figure_id += "-" + match.group(2).replace("_", "-")
            assert figure_id in EXPERIMENT_REGISTRY, figure_id

    def test_runnable_ids_excludes_tables(self):
        runnable = EXPERIMENT_REGISTRY.runnable_ids()
        assert "tables" not in runnable
        assert set(runnable) == set(EXPERIMENT_REGISTRY.ids()) - {"tables"}

    def test_distributed_figures_are_kinded(self):
        for experiment_id in (
            "figure-4-sites", "figure-4-sites-scaling",
            "figure-4-protocols", "figure-4-commit",
        ):
            assert EXPERIMENT_REGISTRY.entry(experiment_id).kind == "distributed"
        assert EXPERIMENT_REGISTRY.entry("figure-4-2pl").kind == "baseline"
        assert EXPERIMENT_REGISTRY.entry("figure-4").kind == "figure"

    def test_unknown_id_raises_with_known_ids_listed(self):
        with pytest.raises(ExperimentError, match="figure-4"):
            EXPERIMENT_REGISTRY.entry("figure-99")

    def test_spec_on_tables_entry_raises(self):
        with pytest.raises(ExperimentError, match="tables"):
            EXPERIMENT_REGISTRY.spec("tables")

    def test_spec_builds_and_validates_for_every_runnable_id(self):
        for experiment_id in EXPERIMENT_REGISTRY.runnable_ids():
            spec = EXPERIMENT_REGISTRY.spec(experiment_id, SMOKE_SCALE)
            spec.validate()
            assert spec.experiment_id == experiment_id

    def test_ablation_specs_match_their_design(self):
        slot = EXPERIMENT_REGISTRY.spec("ablation-pseudo-commit-slot", SMOKE_SCALE)
        assert {variant.label for variant in slot.variants} == {
            "holds-slot", "releases-slot"
        }
        write = EXPERIMENT_REGISTRY.spec("ablation-write-probability", SMOKE_SCALE)
        assert len(write.variants) == 6
        assert write.mpl_levels == (100,)


class TestReporting:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(tiny_spec())

    def test_render_series_has_one_row_per_level(self, result):
        text = render_series(result)
        assert "mpl" in text
        assert len(text.splitlines()) == 1 + len(result.spec.mpl_levels)

    def test_render_summary_mentions_peaks_and_improvement(self, result):
        text = render_summary(result)
        assert "peak" in text
        assert "recoverability vs commutativity" in text

    def test_render_result_includes_title_and_description(self, result):
        text = render_result(result)
        assert result.spec.title in text
        assert "summary" in text


class TestFigureRegistry:
    def test_all_figures_are_registered(self):
        ids = all_figure_ids()
        # The paper's 15 figures plus the strict-2PL baseline and the
        # multi-site router, read-scaling, replication-protocol and
        # commit-protocol experiments.
        assert len(ids) == 20
        assert "figure-4-2pl" in ids
        assert "figure-4-sites" in ids
        assert "figure-4-sites-scaling" in ids
        assert "figure-4-protocols" in ids
        assert "figure-4-commit" in ids
        assert ids[0] == "figure-4" and ids[-1] == "figure-18"

    def test_every_figure_spec_builds_and_validates(self):
        for figure_id in all_figure_ids():
            spec = figure_spec(figure_id, SMOKE_SCALE)
            spec.validate()
            assert spec.experiment_id == figure_id
            assert spec.runs == SMOKE_SCALE.runs
            assert tuple(spec.mpl_levels) == SMOKE_SCALE.mpl_levels

    def test_unknown_figure_raises(self):
        with pytest.raises(ExperimentError):
            figure_spec("figure-99")

    def test_scales_are_ordered_by_size(self):
        assert (
            SMOKE_SCALE.total_completions
            < BENCH_SCALE.total_completions
            < PAPER_SCALE.total_completions
        )

    def test_workloads_and_resources_match_the_paper(self):
        assert figure_spec("figure-4", SMOKE_SCALE).workload == "readwrite"
        assert figure_spec("figure-14", SMOKE_SCALE).workload == "adt"
        assert figure_spec("figure-10", SMOKE_SCALE).base_params.resource_units == 5
        assert figure_spec("figure-11", SMOKE_SCALE).base_params.resource_units == 1
        assert figure_spec("figure-8", SMOKE_SCALE).base_params.fair_scheduling is False
        adt_15 = figure_spec("figure-15", SMOKE_SCALE)
        assert all(variant.overrides["pc"] == 2 for variant in adt_15.variants)

    def test_figure_metrics_match_what_the_paper_plots(self):
        assert figure_spec("figure-5", SMOKE_SCALE).metrics == ("response_time",)
        assert figure_spec("figure-6", SMOKE_SCALE).metrics == (
            "blocking_ratio",
            "restart_ratio",
        )
        assert figure_spec("figure-7", SMOKE_SCALE).metrics == (
            "cycle_check_ratio",
            "abort_length",
        )


class TestTables:
    def test_paper_table_reports_cover_the_four_types(self):
        reports = paper_table_reports()
        assert [report.type_name for report in reports] == ["page", "stack", "set", "table"]
        assert all(report.all_sound for report in reports)

    def test_stack_set_table_match_exactly(self):
        for type_name in ("stack", "set", "table"):
            report = compare_tables(type_name)
            assert report.exact_matches == len(report.comparisons)

    def test_page_refinement_is_reported(self):
        report = compare_tables("page")
        refinements = report.refinements
        assert len(refinements) == 1
        assert (refinements[0].requested, refinements[0].executed) == ("write", "write")

    def test_render_contains_both_table_names(self):
        text = compare_tables("stack").render()
        assert "Table III" in text and "Table IV" in text

    def test_parameter_table_lists_nominal_values(self):
        text = parameter_table()
        assert "database_size" in text
        assert "1000" in text
        assert "write_probability" in text
