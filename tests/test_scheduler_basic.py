"""Basic scheduler behaviour: execution, blocking, commit, abort."""

import pytest

from repro.adts import CounterType, SetType, StackType
from repro.core.errors import TransactionStateError, UnknownObjectError
from repro.core.policy import ConflictPolicy
from repro.core.scheduler import Scheduler, SchedulerListener
from repro.core.transaction import TransactionStatus


class TestSetupAndLifecycle:
    def test_begin_assigns_increasing_ids(self, stack_scheduler):
        first, second = stack_scheduler.begin(), stack_scheduler.begin()
        assert second.tid == first.tid + 1

    def test_unknown_object_raises(self, stack_scheduler):
        transaction = stack_scheduler.begin()
        with pytest.raises(UnknownObjectError):
            stack_scheduler.perform(transaction.tid, "missing", "push", 1)

    def test_unknown_transaction_raises(self, stack_scheduler):
        with pytest.raises(TransactionStateError):
            stack_scheduler.perform(999, "S", "push", 1)

    def test_commit_of_blocked_transaction_is_rejected(self, stack_scheduler):
        first, second = stack_scheduler.begin(), stack_scheduler.begin()
        stack_scheduler.perform(first.tid, "S", "push", 1)
        blocked = stack_scheduler.perform(second.tid, "S", "pop")
        assert blocked.blocked
        with pytest.raises(TransactionStateError):
            stack_scheduler.commit(second.tid)

    def test_double_commit_is_rejected(self, stack_scheduler):
        transaction = stack_scheduler.begin()
        stack_scheduler.perform(transaction.tid, "S", "push", 1)
        stack_scheduler.commit(transaction.tid)
        with pytest.raises(TransactionStateError):
            stack_scheduler.commit(transaction.tid)

    def test_abort_of_terminated_transaction_is_rejected(self, stack_scheduler):
        transaction = stack_scheduler.begin()
        stack_scheduler.commit(transaction.tid)
        with pytest.raises(TransactionStateError):
            stack_scheduler.abort(transaction.tid)

    def test_empty_transaction_commits_directly(self, stack_scheduler):
        transaction = stack_scheduler.begin()
        assert stack_scheduler.commit(transaction.tid) is TransactionStatus.COMMITTED


class TestExecutionPaths:
    def test_commuting_operations_run_concurrently(self, recoverability_scheduler):
        scheduler = recoverability_scheduler
        scheduler.register_object("X", SetType())
        first, second = scheduler.begin(), scheduler.begin()
        assert scheduler.perform(first.tid, "X", "insert", 1).executed
        assert scheduler.perform(second.tid, "X", "insert", 2).executed
        assert scheduler.commit(first.tid) is TransactionStatus.COMMITTED
        assert scheduler.commit(second.tid) is TransactionStatus.COMMITTED
        assert scheduler.committed_state("X") == frozenset({1, 2})

    def test_recoverable_operation_executes_with_commit_dependency(self, stack_scheduler):
        scheduler = stack_scheduler
        first, second = scheduler.begin(), scheduler.begin()
        scheduler.perform(first.tid, "S", "push", 4)
        handle = scheduler.perform(second.tid, "S", "push", 2)
        assert handle.executed and handle.value == "ok"
        assert scheduler.commit_dependencies(second.tid) == {first.tid}
        assert scheduler.object_state("S") == (4, 2)

    def test_conflicting_operation_blocks(self, stack_scheduler):
        scheduler = stack_scheduler
        first, second = scheduler.begin(), scheduler.begin()
        scheduler.perform(first.tid, "S", "push", 4)
        handle = scheduler.perform(second.tid, "S", "pop")
        assert handle.blocked
        assert scheduler.transaction(second.tid).status is TransactionStatus.BLOCKED
        assert scheduler.waiting_for(second.tid) == {first.tid}
        assert scheduler.stats.blocks == 1

    def test_blocked_request_granted_after_commit(self, stack_scheduler):
        scheduler = stack_scheduler
        first, second = scheduler.begin(), scheduler.begin()
        scheduler.perform(first.tid, "S", "push", 4)
        handle = scheduler.perform(second.tid, "S", "pop")
        scheduler.commit(first.tid)
        assert handle.executed
        assert handle.value == 4
        assert scheduler.transaction(second.tid).status is TransactionStatus.ACTIVE

    def test_blocked_request_granted_after_abort(self, stack_scheduler):
        scheduler = stack_scheduler
        first, second = scheduler.begin(), scheduler.begin()
        scheduler.perform(first.tid, "S", "push", 4)
        handle = scheduler.perform(second.tid, "S", "pop")
        scheduler.abort(first.tid)
        assert handle.executed
        assert handle.value is None  # the push was undone; the stack is empty

    def test_user_abort_undoes_effects(self, recoverability_scheduler):
        scheduler = recoverability_scheduler
        scheduler.register_object("C", CounterType())
        transaction = scheduler.begin()
        scheduler.perform(transaction.tid, "C", "increment", 5)
        scheduler.abort(transaction.tid)
        assert scheduler.object_state("C") == 0
        assert scheduler.transaction(transaction.tid).status is TransactionStatus.ABORTED
        assert scheduler.stats.user_aborts == 1

    def test_values_returned_match_visible_state(self, recoverability_scheduler):
        scheduler = recoverability_scheduler
        scheduler.register_object("X", SetType())
        first, second = scheduler.begin(), scheduler.begin()
        scheduler.perform(first.tid, "X", "insert", 3)
        member = scheduler.perform(second.tid, "X", "member", 3)
        # member conflicts with the uncommitted insert (not recoverable), so it blocks.
        assert member.blocked
        scheduler.commit(first.tid)
        assert member.executed and member.value == "yes"

    def test_perform_on_own_prior_operations_never_conflicts(self, stack_scheduler):
        scheduler = stack_scheduler
        transaction = scheduler.begin()
        scheduler.perform(transaction.tid, "S", "push", 1)
        handle = scheduler.perform(transaction.tid, "S", "pop")
        assert handle.executed and handle.value == 1


class TestStatisticsAndIntrospection:
    def test_operation_and_commit_counters(self, stack_scheduler):
        scheduler = stack_scheduler
        transaction = scheduler.begin()
        scheduler.perform(transaction.tid, "S", "push", 1)
        scheduler.perform(transaction.tid, "S", "pop")
        scheduler.commit(transaction.tid)
        assert scheduler.stats.operations_executed == 2
        assert scheduler.stats.commits == 1
        assert scheduler.stats.pseudo_commits == 0

    def test_history_records_operations_and_terminations(self, stack_scheduler):
        scheduler = stack_scheduler
        transaction = scheduler.begin()
        scheduler.perform(transaction.tid, "S", "push", 1)
        scheduler.commit(transaction.tid)
        assert scheduler.history is not None
        assert len(scheduler.history.events()) == 1
        assert scheduler.history.committed() == {transaction.tid}

    def test_history_can_be_disabled(self):
        scheduler = Scheduler(record_history=False)
        scheduler.register_object("S", StackType())
        transaction = scheduler.begin()
        scheduler.perform(transaction.tid, "S", "push", 1)
        assert scheduler.history is None

    def test_retain_terminated_false_drops_records(self):
        scheduler = Scheduler(retain_terminated=False)
        scheduler.register_object("S", StackType())
        transaction = scheduler.begin()
        scheduler.perform(transaction.tid, "S", "push", 1)
        scheduler.commit(transaction.tid)
        assert transaction.tid not in scheduler.transactions

    def test_live_transactions_include_pseudo_committed(self, stack_scheduler):
        scheduler = stack_scheduler
        first, second = scheduler.begin(), scheduler.begin()
        scheduler.perform(first.tid, "S", "push", 4)
        scheduler.perform(second.tid, "S", "push", 2)
        scheduler.commit(second.tid)
        live_ids = {t.tid for t in scheduler.live_transactions()}
        assert live_ids == {first.tid, second.tid}

    def test_average_abort_length(self, stack_scheduler):
        scheduler = stack_scheduler
        transaction = scheduler.begin()
        scheduler.perform(transaction.tid, "S", "push", 1)
        scheduler.perform(transaction.tid, "S", "push", 2)
        scheduler.abort(transaction.tid)
        assert scheduler.stats.average_abort_length == 2.0


class RecordingListener(SchedulerListener):
    def __init__(self):
        self.calls = []

    def on_executed(self, transaction_id, handle, event):
        self.calls.append(("executed", transaction_id))

    def on_blocked(self, transaction_id, handle):
        self.calls.append(("blocked", transaction_id))

    def on_granted(self, transaction_id, handle, event):
        self.calls.append(("granted", transaction_id))

    def on_aborted(self, transaction_id, reason):
        self.calls.append(("aborted", transaction_id, reason))

    def on_pseudo_committed(self, transaction_id):
        self.calls.append(("pseudo", transaction_id))

    def on_committed(self, transaction_id):
        self.calls.append(("committed", transaction_id))


class TestListeners:
    def test_listener_sees_full_lifecycle(self, stack_type):
        scheduler = Scheduler(policy=ConflictPolicy.RECOVERABILITY)
        scheduler.register_object("S", stack_type)
        listener = RecordingListener()
        scheduler.add_listener(listener)
        first, second = scheduler.begin(), scheduler.begin()
        scheduler.perform(first.tid, "S", "push", 4)
        scheduler.perform(second.tid, "S", "pop")       # blocks
        scheduler.commit(first.tid)                      # grants the pop
        scheduler.commit(second.tid)
        kinds = [call[0] for call in listener.calls]
        assert kinds == ["executed", "blocked", "committed", "granted", "committed"]
