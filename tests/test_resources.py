"""Unit tests for the resource layer: domains, chargers, network costs.

Covers :class:`ResourceDomain` queueing and the single-disk shortcut, the
:class:`GlobalResourceModel` facade (bit-compatible with the pre-refactor
shared pool), :class:`PerSiteResources` fan-out charging with ``msg_time``
network delays, commit fan-out delays, and the router's least-loaded
read-one replica selection.
"""

import zlib

import pytest

from repro.adts.page import PageType
from repro.core.errors import ReproError
from repro.distributed import TransactionRouter
from repro.sim.engine import EventEngine
from repro.sim.params import SimulationParameters
from repro.sim.random_source import RandomSource
from repro.sim.resources import (
    GlobalResourceModel,
    PerSiteResources,
    ResourceDomain,
    ResourceModel,
    make_resource_charger,
)


class CountingRandomSource(RandomSource):
    """A RandomSource that counts its ``choice`` draws."""

    def __init__(self, seed=0):
        super().__init__(seed)
        self.choices = 0

    def choice(self, items):
        self.choices += 1
        return super().choice(items)


def finite_domain(engine, rng, *, num_cpus=1, num_disks=2, **overrides):
    params = SimulationParameters(total_completions=1)
    return ResourceDomain(
        engine,
        rng,
        num_cpus=num_cpus,
        num_disks=num_disks,
        cpu_time=params.cpu_time,
        io_time=params.io_time,
        step_time=params.step_time,
        **overrides,
    )


class TestResourceDomain:
    def test_infinite_domain_takes_step_time(self):
        engine = EventEngine()
        domain = finite_domain(engine, RandomSource(1), num_cpus=0, num_disks=0)
        done = []
        domain.perform_step(lambda: done.append(engine.now))
        engine.run()
        assert done == [pytest.approx(0.05)]
        assert domain.infinite and domain.load == 0
        assert domain.utilisation_summary() == {"resources": "infinite"}

    def test_finite_domain_queues_on_the_cpu(self):
        engine = EventEngine()
        domain = finite_domain(engine, RandomSource(1), num_cpus=1)
        done = []
        domain.perform_step(lambda: done.append(engine.now))
        domain.perform_step(lambda: done.append(engine.now))
        assert domain.load == 2  # one in service, one queued
        engine.run()
        # The second step waits for the only CPU; both finish eventually.
        assert len(done) == 2 and done[1] >= 0.015 + 0.035
        summary = domain.utilisation_summary()
        assert summary["cpu_served"] == 2 and summary["cpu_waits"] == 1
        assert domain.load == 0

    def test_single_disk_domain_skips_the_rng_draw(self):
        engine = EventEngine()
        rng = CountingRandomSource(1)
        domain = finite_domain(engine, rng, num_cpus=1, num_disks=1)
        done = []
        domain.perform_step(lambda: done.append(engine.now))
        engine.run()
        assert done == [pytest.approx(0.015 + 0.035)]
        assert rng.choices == 0
        assert domain.utilisation_summary()["disk_served"] == 1

    def test_multi_disk_domain_still_draws(self):
        engine = EventEngine()
        rng = CountingRandomSource(1)
        domain = finite_domain(engine, rng, num_cpus=1, num_disks=2)
        domain.perform_step(lambda: None)
        engine.run()
        assert rng.choices == 1


class TestGlobalResourceModel:
    def test_keeps_the_unconditional_disk_draw(self):
        # The shared pool's rng stream predates the single-disk shortcut:
        # even a hypothetical one-disk pool must keep its draw order so the
        # pinned sites=1 runs stay bit-identical.
        engine = EventEngine()
        rng = CountingRandomSource(1)
        params = SimulationParameters(total_completions=1, resource_units=1)
        model = GlobalResourceModel(engine, params, rng)
        model.perform_step(lambda: None)
        engine.run()
        assert rng.choices == 1

    def test_resource_model_alias_is_the_global_model(self):
        assert ResourceModel is GlobalResourceModel

    def test_charges_once_however_many_replicas_executed(self):
        engine = EventEngine()
        params = SimulationParameters(total_completions=1, resource_units=1)
        model = GlobalResourceModel(engine, params, RandomSource(1))
        done = []
        model.perform_operation([0, 1, 2], 0, lambda: done.append(engine.now))
        engine.run()
        assert done == [pytest.approx(0.015 + 0.035)]
        assert model.utilisation_summary()["cpu_served"] == 1

    def test_remote_work_pays_msg_time_when_modelled(self):
        engine = EventEngine()
        params = SimulationParameters(total_completions=1, msg_time=0.5)
        model = GlobalResourceModel(engine, params, RandomSource(1))
        done = []
        model.perform_operation([1], 0, lambda: done.append(engine.now))
        engine.run()
        assert done == [pytest.approx(0.5 + 0.05)]
        assert model.messages_sent == 1
        assert model.utilisation_summary()["messages_sent"] == 1

    def test_local_work_pays_nothing(self):
        engine = EventEngine()
        params = SimulationParameters(total_completions=1, msg_time=0.5)
        model = GlobalResourceModel(engine, params, RandomSource(1))
        done = []
        model.perform_operation([0], 0, lambda: done.append(engine.now))
        engine.run()
        assert done == [pytest.approx(0.05)]
        assert model.messages_sent == 0

    def test_counts_one_message_per_remote_replica(self):
        # Same accounting as the per-site charger: a write executing at
        # several remote replicas sends one message each, even though the
        # shared pool is charged only once.
        engine = EventEngine()
        params = SimulationParameters(total_completions=1, msg_time=0.5)
        model = GlobalResourceModel(engine, params, RandomSource(1))
        model.perform_operation([0, 1, 2], 0, lambda: None)
        engine.run()
        assert model.messages_sent == 2

    def test_attaching_leaves_sites_without_domains(self):
        engine = EventEngine()
        params = SimulationParameters(total_completions=1, resource_units=1,
                                      site_count=2, replication="copies")
        model = GlobalResourceModel(engine, params, RandomSource(1))
        router = TransactionRouter(site_count=2, replication="copies")
        page = PageType()
        router.register_object("x", page, compatibility=page.compatibility())
        router.attach_resources(model)
        # Shared hardware carries no per-site load signal: no domains, and
        # reads keep the pre-refactor hash-rotation choice.
        assert all(site.domain is None for site in router.sites)
        t = router.begin()
        request = router.perform(t.gtid, "x", "read")
        assert list(request.branch_handles) == [zlib.crc32(b"x") % 2]


class TestPerSiteResources:
    def make(self, sites=2, **overrides):
        engine = EventEngine()
        params = SimulationParameters(total_completions=1, site_count=sites,
                                      replication="copies" if sites > 1 else "single",
                                      resource_placement="per_site", **overrides)
        return engine, PerSiteResources(engine, params, RandomSource(1), sites)

    def test_each_site_owns_its_own_hardware(self):
        engine, charger = self.make(sites=2, resource_units=1)
        done = []
        # Two local operations at different sites do not queue on each other.
        charger.perform_operation([0], 0, lambda: done.append(engine.now))
        charger.perform_operation([1], 1, lambda: done.append(engine.now))
        engine.run()
        assert done == [pytest.approx(0.05), pytest.approx(0.05)]
        summary = charger.utilisation_summary()
        assert summary["site0_cpu_served"] == 1 and summary["site1_cpu_served"] == 1
        assert summary["cpu_served"] == 2  # aggregate over the sites

    def test_write_fanout_charges_every_executing_site(self):
        engine, charger = self.make(sites=2, resource_units=1)
        done = []
        charger.perform_operation([0, 1], 0, lambda: done.append(engine.now))
        engine.run()
        assert done == [pytest.approx(0.05)]  # phases run in parallel
        summary = charger.utilisation_summary()
        assert summary["site0_cpu_served"] == 1 and summary["site1_cpu_served"] == 1

    def test_remote_replica_pays_msg_time(self):
        engine, charger = self.make(sites=2, resource_units=1, msg_time=0.5)
        done = []
        # Home is site 0: the branch at site 1 starts msg_time later, and
        # the operation completes when the slowest replica does.
        charger.perform_operation([0, 1], 0, lambda: done.append(engine.now))
        engine.run()
        assert done == [pytest.approx(0.5 + 0.05)]
        assert charger.messages_sent == 1
        assert charger.remote_operations == 1
        summary = charger.utilisation_summary()
        assert summary["messages_sent"] == 1 and summary["remote_operations"] == 1

    def test_zero_msg_time_means_no_network_events(self):
        engine, charger = self.make(sites=2, resource_units=1)
        charger.perform_operation([0, 1], 0, lambda: None)
        engine.run()
        assert charger.messages_sent == 0 and charger.remote_operations == 0

    def test_commit_network_delay_counts_remote_branches(self):
        engine, charger = self.make(sites=3, resource_units=1, msg_time=0.25)
        assert charger.commit_network_delay([0], 0) == 0.0
        assert charger.commit_network_delay([0, 1, 2], 0) == 0.25
        assert charger.messages_sent == 2  # the two remote branches
        _, charger_off = self.make(sites=3, resource_units=1)
        assert charger_off.commit_network_delay([0, 1, 2], 0) == 0.0

    def test_domain_loads_track_outstanding_work(self):
        engine, charger = self.make(sites=2, resource_units=1)
        charger.perform_operation([0], 0, lambda: None)
        assert charger.domains[0].load == 1 and charger.domains[1].load == 0
        engine.run()
        assert charger.domains[0].load == 0

    def test_infinite_per_site_domains(self):
        engine, charger = self.make(sites=2)
        done = []
        charger.perform_operation([0, 1], 0, lambda: done.append(engine.now))
        engine.run()
        assert done == [pytest.approx(0.05)]
        summary = charger.utilisation_summary()
        assert summary["resources"] == "infinite"
        assert summary["messages_sent"] == 0


class TestMakeResourceCharger:
    def test_global_placement_builds_the_shared_model(self):
        engine = EventEngine()
        params = SimulationParameters(total_completions=1, resource_units=2)
        charger = make_resource_charger(engine, params, RandomSource(1))
        assert isinstance(charger, GlobalResourceModel)

    def test_per_site_placement_builds_one_domain_per_site(self):
        engine = EventEngine()
        params = SimulationParameters(
            total_completions=1, resource_units=2, site_count=3,
            replication="copies", resource_placement="per_site",
        )
        charger = make_resource_charger(engine, params, RandomSource(1))
        assert isinstance(charger, PerSiteResources)
        assert len(charger.domains) == 3
        assert all(domain.cpus.capacity == 2 for domain in charger.domains)
        assert all(len(domain.disks) == 4 for domain in charger.domains)


class TestRouterResourceIntegration:
    def make_router(self, sites=2, **param_overrides):
        engine = EventEngine()
        params = SimulationParameters(
            total_completions=1, site_count=sites,
            replication="copies" if sites > 1 else "single",
            resource_placement="per_site", **param_overrides,
        )
        router = TransactionRouter(site_count=sites,
                                   replication=params.replication)
        page = PageType()
        router.register_object("x", page, compatibility=page.compatibility())
        charger = PerSiteResources(engine, params, RandomSource(1), sites)
        router.attach_resources(charger)
        return engine, router, charger

    def test_attach_wires_domains_onto_sites(self):
        engine, router, charger = self.make_router(sites=2, resource_units=1)
        assert [site.domain for site in router.sites] == charger.domains
        assert router.sites[0].load == 0

    def test_attach_rejects_domain_count_mismatch(self):
        engine, router, charger = self.make_router(sites=2, resource_units=1)
        with pytest.raises(ReproError):
            router.attach_resources(
                PerSiteResources(engine,
                                 SimulationParameters(total_completions=1,
                                                      site_count=3,
                                                      replication="copies",
                                                      resource_placement="per_site"),
                                 RandomSource(1), 3)
            )

    def test_perform_step_without_charger_is_rejected(self):
        router = TransactionRouter(site_count=1, replication="single")
        page = PageType()
        router.register_object("x", page, compatibility=page.compatibility())
        t = router.begin()
        router.perform(t.gtid, "x", "read")
        with pytest.raises(ReproError):
            router.perform_step(t.gtid, lambda: None)

    def test_reads_prefer_the_least_loaded_replica(self):
        engine, router, charger = self.make_router(sites=2, resource_units=1)
        # Saturate the replica the hash rotation would pick first.
        hash_target = zlib.crc32(b"x") % 2
        other = 1 - hash_target
        charger.domains[hash_target].perform_step(lambda: None)
        charger.domains[hash_target].perform_step(lambda: None)
        t = router.begin(home_site=0)
        request = router.perform(t.gtid, "x", "read")
        assert request.executed
        assert list(request.branch_handles) == [other]

    def test_reads_fall_back_to_hash_order_on_ties(self):
        engine, router, charger = self.make_router(sites=2, resource_units=1)
        t = router.begin(home_site=0)
        request = router.perform(t.gtid, "x", "read")
        assert list(request.branch_handles) == [zlib.crc32(b"x") % 2]

    def test_begin_spreads_home_sites_round_robin(self):
        engine, router, charger = self.make_router(sites=2, resource_units=1)
        homes = [router.begin().home_site for _ in range(4)]
        assert homes == [0, 1, 0, 1]
        with pytest.raises(ReproError):
            router.begin(home_site=7)

    def test_resource_phase_routes_through_the_router(self):
        engine, router, charger = self.make_router(sites=2, resource_units=1,
                                                   msg_time=0.5)
        t = router.begin(home_site=0)
        request = router.perform(t.gtid, "x", "write", 9)
        assert request.executed
        done = []
        router.perform_step(t.gtid, lambda: done.append(engine.now))
        engine.run()
        # Write-all: the remote replica's phase starts msg_time later.
        assert done == [pytest.approx(0.5 + 0.015 + 0.035)]
        assert router.commit_network_delay(t.gtid) == 0.5
