"""The worked examples of Section 3.2: sequences (1), (2) and (3).

These tests replay the paper's own interleavings through the offline checkers
and through the scheduler, and verify the claims the paper makes about them:
sequence (1) is vulnerable to cascading aborts, sequence (2) is not, and in
sequence (3) recoverability lets T2 proceed without waiting for T1 while still
fixing the commit order.
"""


from repro.adts import SetType, StackType
from repro.core.history import ExecutionLog
from repro.core.policy import ConflictPolicy
from repro.core.scheduler import Scheduler
from repro.core.serializability import (
    ObjectUniverse,
    is_free_of_cascading_aborts,
    is_log_sound,
    is_serializable,
    unsound_events,
)
from repro.core.specification import Invocation
from repro.core.transaction import TransactionStatus


def set_universe(*names):
    return ObjectUniverse.uniform(SetType(), names)


class TestSequence1:
    """X: insert(3) by T1; member(3) by T2; insert(7) by T1; delete(3) by T2."""

    def build(self):
        log = ExecutionLog()
        log.append_operation("X", Invocation("insert", (3,)), "ok", 1)
        log.append_operation("X", Invocation("member", (3,)), "yes", 2)
        log.append_operation("X", Invocation("insert", (7,)), "ok", 1)
        log.append_operation("X", Invocation("delete", (3,)), "Success", 2)
        return log

    def test_t2_reads_t1_effects_so_the_log_is_unsound(self):
        log = self.build()
        universe = set_universe("X")
        assert not is_log_sound(log, universe)
        bad = unsound_events(log, universe)
        # Both of T2's operations observed the uncommitted insert(3).
        assert {event.transaction_id for event in bad} == {2}

    def test_scheduler_refuses_the_dangerous_interleaving(self):
        """Under either policy the member(3) must wait for T1, so the cascade
        can never arise in the first place."""
        for policy in (ConflictPolicy.COMMUTATIVITY, ConflictPolicy.RECOVERABILITY):
            scheduler = Scheduler(policy=policy)
            scheduler.register_object("X", SetType())
            t1, t2 = scheduler.begin(), scheduler.begin()
            assert scheduler.perform(t1.tid, "X", "insert", 3).executed
            assert scheduler.perform(t2.tid, "X", "member", 3).blocked


class TestSequence2:
    """Operations of T1 and T2 on sets X and Y that never observe each other."""

    def build(self):
        log = ExecutionLog()
        log.append_operation("X", Invocation("member", (3,)), "no", 2)
        log.append_operation("X", Invocation("insert", (3,)), "ok", 1)
        log.append_operation("Y", Invocation("insert", (4,)), "ok", 1)
        log.append_operation("Y", Invocation("delete", (5,)), "Failure", 2)
        log.append_commit(1)
        log.append_abort(2)
        return log

    def test_log_is_sound_and_cascade_free(self):
        log = self.build()
        universe = set_universe("X", "Y")
        assert is_log_sound(log, universe)
        assert is_free_of_cascading_aborts(log, universe)

    def test_t1_semantics_survive_t2_abort(self):
        log = self.build()
        universe = set_universe("X", "Y")
        reduced = log.without_transactions({2})
        from repro.core.serializability import replay_object

        state_with, _ = replay_object(log.without_transactions(log.aborted()), universe, "Y")
        state_without, _ = replay_object(reduced, universe, "Y")
        assert state_with == state_without == frozenset({4})

    def test_log_is_serializable(self):
        assert is_serializable(self.build(), set_universe("X", "Y"))

    def test_scheduler_allows_this_interleaving(self):
        scheduler = Scheduler(policy=ConflictPolicy.RECOVERABILITY)
        scheduler.register_object("X", SetType())
        scheduler.register_object("Y", SetType())
        t1, t2 = scheduler.begin(), scheduler.begin()
        assert scheduler.perform(t2.tid, "X", "member", 3).executed
        assert scheduler.perform(t1.tid, "X", "insert", 3).executed
        assert scheduler.perform(t1.tid, "Y", "insert", 4).executed
        assert scheduler.perform(t2.tid, "Y", "delete", 5).executed
        assert scheduler.commit(t1.tid) in (
            TransactionStatus.COMMITTED,
            TransactionStatus.PSEUDO_COMMITTED,
        )
        scheduler.abort(t2.tid)
        assert scheduler.transaction(t1.tid).status is TransactionStatus.COMMITTED
        assert scheduler.committed_state("X") == frozenset({3})
        assert scheduler.committed_state("Y") == frozenset({4})


class TestSequence3:
    """S: push(4) by T1; X: member(3) by T1; S: push(2) by T2; X: insert(3) by T2."""

    def run_through_scheduler(self, policy):
        scheduler = Scheduler(policy=policy)
        scheduler.register_object("S", StackType())
        scheduler.register_object("X", SetType())
        t1, t2 = scheduler.begin(), scheduler.begin()
        outcomes = [
            scheduler.perform(t1.tid, "S", "push", 4),
            scheduler.perform(t1.tid, "X", "member", 3),
            scheduler.perform(t2.tid, "S", "push", 2),
            scheduler.perform(t2.tid, "X", "insert", 3),
        ]
        return scheduler, t1, t2, outcomes

    def test_commutativity_makes_t2_wait(self):
        scheduler = Scheduler(policy=ConflictPolicy.COMMUTATIVITY)
        scheduler.register_object("S", StackType())
        scheduler.register_object("X", SetType())
        t1, t2 = scheduler.begin(), scheduler.begin()
        assert scheduler.perform(t1.tid, "S", "push", 4).executed
        assert scheduler.perform(t1.tid, "X", "member", 3).executed
        # push(2) waits for T1's push(4); T2 cannot reach its insert(3).
        assert scheduler.perform(t2.tid, "S", "push", 2).blocked

    def test_recoverability_lets_t2_run_immediately(self):
        scheduler, t1, t2, outcomes = self.run_through_scheduler(ConflictPolicy.RECOVERABILITY)
        assert all(handle.executed for handle in outcomes)
        assert scheduler.commit_dependencies(t2.tid) == {t1.tid}

    def test_commit_order_is_fixed_t1_before_t2(self):
        scheduler, t1, t2, _ = self.run_through_scheduler(ConflictPolicy.RECOVERABILITY)
        assert scheduler.commit(t2.tid) is TransactionStatus.PSEUDO_COMMITTED
        assert scheduler.commit(t1.tid) is TransactionStatus.COMMITTED
        commit_order = [
            record.transaction_id
            for record in scheduler.history.records()
            if record.kind.name == "COMMIT"
        ]
        assert commit_order == [t1.tid, t2.tid]

    def test_t2_commits_even_if_t1_aborts(self):
        """The abort of T1 must not cascade to the recoverable T2."""
        scheduler, t1, t2, _ = self.run_through_scheduler(ConflictPolicy.RECOVERABILITY)
        scheduler.commit(t2.tid)
        scheduler.abort(t1.tid)
        assert scheduler.transaction(t2.tid).status is TransactionStatus.COMMITTED
        assert scheduler.committed_state("S") == (2,)
        assert scheduler.committed_state("X") == frozenset({3})

    def test_resulting_log_is_sound_and_serializable(self):
        scheduler, t1, t2, _ = self.run_through_scheduler(ConflictPolicy.RECOVERABILITY)
        scheduler.commit(t2.tid)
        scheduler.commit(t1.tid)
        universe = ObjectUniverse(
            specs={"S": StackType(), "X": SetType()},
        )
        assert is_log_sound(scheduler.history, universe)
        assert is_serializable(scheduler.history, universe)
