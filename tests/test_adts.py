"""Semantics tests for the bundled atomic data types (Section 3.2 examples)."""

import pytest

from repro.adts import StackType, available_types, get_type, paper_types, register_type
from repro.core.errors import SpecificationError
from repro.core.specification import Invocation


class TestPage:
    def test_initial_read(self, page_type):
        assert page_type.return_value(page_type.initial_state(), Invocation("read")) == 0

    def test_write_then_read(self, page_type):
        state = page_type.next_state(0, Invocation("write", (42,)))
        assert page_type.return_value(state, Invocation("read")) == 42

    def test_write_returns_ok(self, page_type):
        assert page_type.return_value(0, Invocation("write", (42,))) == "ok"

    def test_read_is_read_only(self, page_type):
        assert page_type.operation("read").is_read_only
        assert not page_type.operation("write").is_read_only


class TestStack:
    def test_push_pop_round_trip(self, stack_type):
        state = stack_type.next_state((), Invocation("push", (4,)))
        state = stack_type.next_state(state, Invocation("push", (2,)))
        result = stack_type.apply(state, Invocation("pop"))
        assert result.value == 2
        assert result.state == (4,)

    def test_pop_on_empty_returns_null(self, stack_type):
        result = stack_type.apply((), Invocation("pop"))
        assert result.value is None
        assert result.state == ()

    def test_top_does_not_change_state(self, stack_type):
        result = stack_type.apply((1, 2), Invocation("top"))
        assert result.value == 2
        assert result.state == (1, 2)

    def test_top_on_empty_returns_null(self, stack_type):
        assert stack_type.return_value((), Invocation("top")) is None

    def test_push_has_logical_inverse(self, stack_type):
        inverse = stack_type.operation("push").inverse((), (4,), "ok")
        assert inverse == Invocation("pop")


class TestSet:
    def test_insert_is_idempotent(self, set_type):
        state = set_type.next_state(frozenset(), Invocation("insert", (3,)))
        state = set_type.next_state(state, Invocation("insert", (3,)))
        assert state == frozenset({3})

    def test_delete_present_and_absent(self, set_type):
        assert set_type.return_value(frozenset({3}), Invocation("delete", (3,))) == "Success"
        assert set_type.return_value(frozenset(), Invocation("delete", (3,))) == "Failure"

    def test_member(self, set_type):
        assert set_type.return_value(frozenset({3}), Invocation("member", (3,))) == "yes"
        assert set_type.return_value(frozenset({3}), Invocation("member", (4,))) == "no"

    def test_member_is_read_only(self, set_type):
        assert set_type.operation("member").is_read_only


class TestTable:
    def test_insert_unique_keys(self, table_type):
        result = table_type.apply({}, Invocation("insert", ("k", "v")))
        assert result.value == "Success"
        assert result.state == {"k": "v"}
        again = table_type.apply(result.state, Invocation("insert", ("k", "other")))
        assert again.value == "Failure"
        assert again.state == {"k": "v"}

    def test_delete(self, table_type):
        assert table_type.apply({"k": "v"}, Invocation("delete", ("k",))).value == "Success"
        assert table_type.apply({}, Invocation("delete", ("k",))).value == "Failure"

    def test_lookup(self, table_type):
        assert table_type.return_value({"k": "v"}, Invocation("lookup", ("k",))) == "v"
        assert table_type.return_value({}, Invocation("lookup", ("k",))) == "not_found"

    def test_size(self, table_type):
        assert table_type.return_value({}, Invocation("size")) == 0
        assert table_type.return_value({"a": 1, "b": 2}, Invocation("size")) == 2

    def test_modify(self, table_type):
        result = table_type.apply({"k": "v"}, Invocation("modify", ("k", "new")))
        assert result.value == "Success"
        assert result.state == {"k": "new"}
        assert table_type.apply({}, Invocation("modify", ("k", "new"))).value == "Failure"

    def test_modify_does_not_change_size(self, table_type):
        state = table_type.next_state({"k": "v"}, Invocation("modify", ("k", "new")))
        assert table_type.return_value(state, Invocation("size")) == 1

    def test_conflict_parameter_is_the_key(self, table_type):
        assert table_type.conflict_parameter(Invocation("insert", ("k", "x"))) == "k"
        assert table_type.conflict_parameter(Invocation("size")) is None

    def test_operations_never_mutate_the_input_state(self, table_type):
        state = {"k": "v"}
        table_type.apply(state, Invocation("insert", ("other", "w")))
        table_type.apply(state, Invocation("delete", ("k",)))
        table_type.apply(state, Invocation("modify", ("k", "new")))
        assert state == {"k": "v"}


class TestCounter:
    def test_increment_and_decrement(self, counter_type):
        state = counter_type.next_state(0, Invocation("increment", (5,)))
        state = counter_type.next_state(state, Invocation("decrement", (2,)))
        assert counter_type.return_value(state, Invocation("read")) == 3

    def test_default_amount_is_one(self, counter_type):
        assert counter_type.next_state(0, Invocation("increment")) == 1

    def test_inverses(self, counter_type):
        assert counter_type.operation("increment").inverse(0, (5,), "ok") == Invocation(
            "decrement", (5,)
        )
        assert counter_type.operation("decrement").inverse(0, (5,), "ok") == Invocation(
            "increment", (5,)
        )


class TestQueue:
    def test_fifo_order(self, queue_type):
        state = queue_type.next_state((), Invocation("enqueue", (1,)))
        state = queue_type.next_state(state, Invocation("enqueue", (2,)))
        result = queue_type.apply(state, Invocation("dequeue"))
        assert result.value == 1
        assert result.state == (2,)

    def test_front_and_length(self, queue_type):
        assert queue_type.return_value((7, 8), Invocation("front")) == 7
        assert queue_type.return_value((7, 8), Invocation("length")) == 2
        assert queue_type.return_value((), Invocation("front")) is None

    def test_dequeue_empty(self, queue_type):
        result = queue_type.apply((), Invocation("dequeue"))
        assert result.value is None and result.state == ()


class TestAtomicObject:
    def test_execute_mutates_held_state(self, stack_type):
        obj = stack_type.make_object("S")
        assert obj.execute("push", 4) == "ok"
        assert obj.execute("top") == 4
        assert obj.state == (4,)

    def test_peek_does_not_mutate(self, stack_type):
        obj = stack_type.make_object("S", state=(1,))
        assert obj.peek(Invocation("pop")).value == 1
        assert obj.state == (1,)

    def test_snapshot_restore(self, counter_type):
        obj = counter_type.make_object("C")
        obj.execute("increment", 10)
        snapshot = obj.snapshot()
        obj.execute("increment", 5)
        obj.restore(snapshot)
        assert obj.execute("read") == 10

    def test_compatibility_passthrough(self, set_type):
        obj = set_type.make_object("X")
        assert obj.compatibility().type_name == "set"


class TestRegistry:
    def test_paper_types_are_registered(self):
        assert set(paper_types()) <= set(available_types())

    def test_get_type_returns_fresh_instances(self):
        assert get_type("stack") is not get_type("stack")
        assert get_type("stack").name == "stack"

    def test_unknown_type_raises(self):
        with pytest.raises(SpecificationError):
            get_type("btree")

    def test_register_type_conflict_and_replace(self):
        register_type("stack2", StackType)
        with pytest.raises(SpecificationError):
            register_type("stack2", StackType)
        register_type("stack2", StackType, replace=True)
        assert "stack2" in available_types()

    def test_extra_types_are_available(self):
        assert {"counter", "queue"} <= set(available_types())
