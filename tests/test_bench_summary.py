"""Tests for tools/bench_summary.py (deterministic per-figure counters)."""

import importlib.util
import json
import pathlib
import sys

import pytest

_TOOL = pathlib.Path(__file__).parent.parent / "tools" / "bench_summary.py"


@pytest.fixture(scope="module")
def bench_summary():
    spec = importlib.util.spec_from_file_location("bench_summary", _TOOL)
    module = importlib.util.module_from_spec(spec)
    sys.modules["bench_summary"] = module
    spec.loader.exec_module(module)
    return module


def test_writes_deterministic_counters_for_one_figure(bench_summary, tmp_path):
    output = tmp_path / "BENCH_summary.json"
    code = bench_summary.main(
        ["--figures", "figure-4", "--scale", "smoke", "--output", str(output)]
    )
    assert code == 0
    payload = json.loads(output.read_text())
    assert payload["scale"] == "smoke"
    points = payload["figures"]["figure-4"]["points"]
    assert set(points) == {"commutativity", "recoverability"}
    point = points["recoverability"]["10"]
    for counter in (
        "completions", "blocks", "restarts", "cycle_checks", "aborts",
        "events_processed", "simulated_time",
    ):
        assert counter in point
    assert point["completions"] >= 150


def _deterministic(payload):
    """Everything except the host-dependent ``timing`` block."""
    return {key: value for key, value in payload.items() if key != "timing"}


def test_counters_are_reproducible(bench_summary, tmp_path):
    first = bench_summary.summarize(["figure-4"], "smoke")
    second = bench_summary.summarize(["figure-4"], "smoke")
    assert _deterministic(first) == _deterministic(second)


def test_timing_block_records_wall_clock_and_workers(bench_summary):
    payload = bench_summary.summarize(["figure-4"], "smoke", workers=1)
    timing = payload["timing"]
    assert timing["workers"] == 1
    assert set(timing["seconds"]) == {"figure-4"}
    assert timing["seconds"]["figure-4"] > 0
    assert timing["total_seconds"] == pytest.approx(
        sum(timing["seconds"].values()), abs=0.01
    )
    # The profiled reference run's wall-clock lands here (host-dependent),
    # keeping the profile block itself fully deterministic.
    assert timing["profile_wall_seconds"] > 0
    assert "wall_seconds" not in payload["profile"]


def test_parallel_counters_match_serial(bench_summary):
    serial = bench_summary.summarize(["figure-4"], "smoke", workers=1)
    parallel = bench_summary.summarize(["figure-4"], "smoke", workers=2)
    assert serial["figures"] == parallel["figures"]
    assert parallel["timing"]["workers"] == 2


def test_unknown_figure_is_rejected(bench_summary, tmp_path):
    with pytest.raises(SystemExit):
        bench_summary.main(
            ["--figures", "figure-99", "--output", str(tmp_path / "x.json")]
        )


def test_lint_summary_rides_along(bench_summary):
    lint = bench_summary.lint_summary()
    assert lint["total"] == 0
    assert set(lint["rule_counts"]) == {
        "REP001", "REP002", "REP003", "REP004", "REP005", "REP006", "REP007",
        "REP008", "REP009", "REP010",
    }
    assert all(count == 0 for count in lint["rule_counts"].values())
