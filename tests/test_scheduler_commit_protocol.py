"""Tests for the pseudo-commit / commit protocol of Section 4.3."""

import pytest

from repro.adts import QueueType, StackType
from repro.core.policy import ConflictPolicy
from repro.core.scheduler import Scheduler
from repro.core.transaction import TransactionStatus


@pytest.fixture
def scheduler():
    s = Scheduler(policy=ConflictPolicy.RECOVERABILITY)
    s.register_object("S", StackType())
    s.register_object("Q", QueueType())
    return s


class TestPseudoCommit:
    def test_dependent_transaction_pseudo_commits(self, scheduler):
        first, second = scheduler.begin(), scheduler.begin()
        scheduler.perform(first.tid, "S", "push", 4)
        scheduler.perform(second.tid, "S", "push", 2)
        assert scheduler.commit(second.tid) is TransactionStatus.PSEUDO_COMMITTED
        assert scheduler.transaction(second.tid).status is TransactionStatus.PSEUDO_COMMITTED
        assert scheduler.stats.pseudo_commits == 1
        # Effects are not yet durable: the committed state is still empty.
        assert scheduler.committed_state("S") == ()
        assert scheduler.object_state("S") == (4, 2)

    def test_pseudo_committed_commits_when_dependency_commits(self, scheduler):
        first, second = scheduler.begin(), scheduler.begin()
        scheduler.perform(first.tid, "S", "push", 4)
        scheduler.perform(second.tid, "S", "push", 2)
        scheduler.commit(second.tid)
        assert scheduler.commit(first.tid) is TransactionStatus.COMMITTED
        assert scheduler.transaction(second.tid).status is TransactionStatus.COMMITTED
        assert scheduler.committed_state("S") == (4, 2)
        assert scheduler.stats.commits == 2

    def test_pseudo_committed_commits_when_dependency_aborts(self, scheduler):
        """Recoverability's key property: no cascading aborts.

        The transaction the pseudo-committed one depends on aborts; the
        pseudo-committed transaction still commits, and the aborted push is
        undone underneath the surviving one.
        """
        first, second = scheduler.begin(), scheduler.begin()
        scheduler.perform(first.tid, "S", "push", 4)
        scheduler.perform(second.tid, "S", "push", 2)
        scheduler.commit(second.tid)
        scheduler.abort(first.tid)
        assert scheduler.transaction(second.tid).status is TransactionStatus.COMMITTED
        assert scheduler.committed_state("S") == (2,)
        assert scheduler.stats.commits == 1
        assert scheduler.stats.aborts == 1

    def test_independent_transaction_commits_directly(self, scheduler):
        first = scheduler.begin()
        scheduler.perform(first.tid, "S", "push", 4)
        assert scheduler.commit(first.tid) is TransactionStatus.COMMITTED
        assert scheduler.stats.pseudo_commits == 0

    def test_commit_order_follows_invocation_order(self, scheduler):
        """If both commit, the earlier invoker must become durable first."""
        first, second = scheduler.begin(), scheduler.begin()
        scheduler.perform(first.tid, "S", "push", 4)
        scheduler.perform(second.tid, "S", "push", 2)
        # Committing the later transaction first only pseudo-commits it...
        assert scheduler.commit(second.tid) is TransactionStatus.PSEUDO_COMMITTED
        # ...and the earlier one commits directly when asked.
        assert scheduler.commit(first.tid) is TransactionStatus.COMMITTED
        history = scheduler.history
        commit_order = [
            record.transaction_id
            for record in history.records()
            if record.kind.name == "COMMIT"
        ]
        assert commit_order == [first.tid, second.tid]


class TestDependencyChains:
    def test_chain_of_three_pseudo_commits_cascades(self, scheduler):
        t1, t2, t3 = scheduler.begin(), scheduler.begin(), scheduler.begin()
        scheduler.perform(t1.tid, "S", "push", 1)
        scheduler.perform(t2.tid, "S", "push", 2)
        scheduler.perform(t3.tid, "S", "push", 3)
        assert scheduler.commit(t3.tid) is TransactionStatus.PSEUDO_COMMITTED
        assert scheduler.commit(t2.tid) is TransactionStatus.PSEUDO_COMMITTED
        # Committing the head of the chain cascades through the whole chain.
        assert scheduler.commit(t1.tid) is TransactionStatus.COMMITTED
        assert scheduler.transaction(t2.tid).status is TransactionStatus.COMMITTED
        assert scheduler.transaction(t3.tid).status is TransactionStatus.COMMITTED
        assert scheduler.committed_state("S") == (1, 2, 3)

    def test_chain_with_abort_in_the_middle(self, scheduler):
        t1, t2, t3 = scheduler.begin(), scheduler.begin(), scheduler.begin()
        scheduler.perform(t1.tid, "S", "push", 1)
        scheduler.perform(t2.tid, "S", "push", 2)
        scheduler.perform(t3.tid, "S", "push", 3)
        scheduler.commit(t3.tid)
        scheduler.abort(t2.tid)
        # T3 now depends only on T1 and stays pseudo-committed until T1 ends.
        assert scheduler.transaction(t3.tid).status is TransactionStatus.PSEUDO_COMMITTED
        scheduler.commit(t1.tid)
        assert scheduler.transaction(t3.tid).status is TransactionStatus.COMMITTED
        assert scheduler.committed_state("S") == (1, 3)

    def test_dependencies_across_multiple_objects(self, scheduler):
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.perform(t1.tid, "S", "push", 1)
        scheduler.perform(t1.tid, "Q", "enqueue", "a")
        scheduler.perform(t2.tid, "S", "push", 2)
        scheduler.perform(t2.tid, "Q", "enqueue", "b")
        assert scheduler.commit_dependencies(t2.tid) == {t1.tid}
        assert scheduler.commit(t2.tid) is TransactionStatus.PSEUDO_COMMITTED
        scheduler.commit(t1.tid)
        assert scheduler.committed_state("S") == (1, 2)
        assert scheduler.committed_state("Q") == ("a", "b")

    def test_pseudo_committed_operations_still_cause_conflicts(self, scheduler):
        """The paper: a pseudo-committed transaction's operations remain in the
        log and participate in conflict detection until the durable commit."""
        t1, t2, t3 = scheduler.begin(), scheduler.begin(), scheduler.begin()
        scheduler.perform(t1.tid, "S", "push", 1)
        scheduler.perform(t2.tid, "S", "push", 2)
        scheduler.commit(t2.tid)  # pseudo-committed, push(2) still uncommitted
        handle = scheduler.perform(t3.tid, "S", "pop")
        assert handle.blocked
        assert scheduler.waiting_for(t3.tid) == {t1.tid, t2.tid}

    def test_fan_in_dependency(self, scheduler):
        """One transaction depending on two predecessors commits only after both."""
        t1, t2, t3 = scheduler.begin(), scheduler.begin(), scheduler.begin()
        scheduler.perform(t1.tid, "S", "push", 1)
        scheduler.perform(t2.tid, "Q", "enqueue", "x")
        scheduler.perform(t3.tid, "S", "push", 3)
        scheduler.perform(t3.tid, "Q", "enqueue", "y")
        assert scheduler.commit(t3.tid) is TransactionStatus.PSEUDO_COMMITTED
        scheduler.commit(t1.tid)
        assert scheduler.transaction(t3.tid).status is TransactionStatus.PSEUDO_COMMITTED
        scheduler.commit(t2.tid)
        assert scheduler.transaction(t3.tid).status is TransactionStatus.COMMITTED
