"""Fixture tests for the ``repro lint`` static analyzer.

Each REP rule gets at least one catching and one passing fixture; a
meta-test asserts the analyzer is clean on the repo's own source tree (the
acceptance gate CI enforces).
"""

import io
import json
import pathlib


from repro.cli import main
from repro.lint import lint_paths, lint_sources, rule_counts

REPO_SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def rules_in(sources):
    return {violation.rule for violation in lint_sources(sources)}


# ---------------------------------------------------------------------------
# REP001 — randomness only through RandomSource
# ---------------------------------------------------------------------------
class TestRep001:
    def test_catches_random_import(self):
        assert "REP001" in rules_in({"src/repro/sim/engine.py": "import random\n"})

    def test_catches_secrets_from_import(self):
        assert "REP001" in rules_in(
            {"src/repro/distributed/site.py": "from secrets import token_hex\n"}
        )

    def test_allows_random_source_module(self):
        assert "REP001" not in rules_in(
            {"src/repro/sim/random_source.py": "import random\n"}
        )

    def test_allows_other_imports(self):
        assert "REP001" not in rules_in({"src/repro/sim/engine.py": "import heapq\n"})


# ---------------------------------------------------------------------------
# REP002 — no unordered iteration in sim/distributed
# ---------------------------------------------------------------------------
class TestRep002:
    def test_catches_for_over_set_literal(self):
        assert "REP002" in rules_in(
            {"src/repro/distributed/x.py": "for a in {1, 2}:\n    pass\n"}
        )

    def test_catches_for_over_set_local(self):
        bad = "def f():\n    pending = set()\n    for item in pending:\n        pass\n"
        assert "REP002" in rules_in({"src/repro/sim/x.py": bad})

    def test_catches_dict_keys_iteration(self):
        bad = "def f(d):\n    for k in d.keys():\n        pass\n"
        assert "REP002" in rules_in({"src/repro/sim/x.py": bad})

    def test_catches_set_returning_method_cross_file(self):
        sources = {
            "src/repro/distributed/a.py": (
                "from typing import Set\n"
                "class T:\n"
                "    def written_objects(self) -> Set[str]:\n"
                "        return set()\n"
            ),
            "src/repro/distributed/b.py": (
                "def f(t):\n    for name in t.written_objects():\n        pass\n"
            ),
        }
        assert "REP002" in rules_in(sources)

    def test_catches_set_annotated_attribute(self):
        bad = (
            "from typing import Set\n"
            "class Site:\n"
            "    unreadable: Set[str]\n"
            "    def f(self):\n"
            "        for name in self.unreadable:\n"
            "            pass\n"
        )
        assert "REP002" in rules_in({"src/repro/distributed/x.py": bad})

    def test_allows_sorted_wrapper(self):
        good = "def f():\n    pending = set()\n    for item in sorted(pending):\n        pass\n"
        assert "REP002" not in rules_in({"src/repro/sim/x.py": good})

    def test_allows_list_iteration(self):
        good = "def f():\n    items = [1, 2]\n    for item in items:\n        pass\n"
        assert "REP002" not in rules_in({"src/repro/sim/x.py": good})

    def test_allows_membership_and_union_without_iteration(self):
        good = (
            "def f(a, b):\n"
            "    s = {1} | {2}\n"
            "    return 1 in s\n"
        )
        assert "REP002" not in rules_in({"src/repro/distributed/x.py": good})

    def test_outside_sim_distributed_not_checked(self):
        # core may iterate sets: its callers sort where order matters.
        code = "def f():\n    for a in {1, 2}:\n        pass\n"
        assert "REP002" not in rules_in({"src/repro/core/x.py": code})


# ---------------------------------------------------------------------------
# REP003 — no wall-clock in the deterministic layers
# ---------------------------------------------------------------------------
class TestRep003:
    def test_catches_time_time(self):
        assert "REP003" in rules_in(
            {"src/repro/sim/x.py": "import time\nstamp = time.time()\n"}
        )

    def test_catches_from_time_import(self):
        assert "REP003" in rules_in(
            {"src/repro/core/x.py": "from time import perf_counter\n"}
        )

    def test_catches_datetime_now(self):
        bad = "import datetime\nwhen = datetime.datetime.now()\n"
        assert "REP003" in rules_in({"src/repro/distributed/x.py": bad})

    def test_allows_analysis_layer(self):
        code = "import time\nstamp = time.time()\n"
        assert "REP003" not in rules_in({"src/repro/analysis/x.py": code})

    def test_allows_simulated_clock(self):
        code = "def f(engine):\n    return engine.now\n"
        assert "REP003" not in rules_in({"src/repro/sim/x.py": code})


# ---------------------------------------------------------------------------
# REP004 — import layering
# ---------------------------------------------------------------------------
class TestRep004:
    def test_catches_sim_importing_distributed(self):
        assert "REP004" in rules_in(
            {"src/repro/sim/x.py": "from repro.distributed.router import TransactionRouter\n"}
        )

    def test_catches_relative_upward_import(self):
        assert "REP004" in rules_in(
            {"src/repro/sim/x.py": "from ..distributed import router\n"}
        )

    def test_catches_core_importing_sim(self):
        assert "REP004" in rules_in(
            {"src/repro/core/x.py": "import repro.sim.engine\n"}
        )

    def test_allows_downward_imports(self):
        good = {
            "src/repro/distributed/x.py": "from ..sim.routing import create_router\n",
            "src/repro/sim/y.py": "from ..core.errors import SimulationError\n",
        }
        assert "REP004" not in rules_in(good)

    def test_package_init_relative_resolution(self):
        # ``from ..sim.routing import ...`` inside distributed/__init__.py
        # resolves against the package itself, not its parent.
        good = {
            "src/repro/distributed/__init__.py": (
                "from ..sim.routing import register_router_factory\n"
            )
        }
        assert "REP004" not in rules_in(good)


# ---------------------------------------------------------------------------
# REP005 — protocol-seam conformance
# ---------------------------------------------------------------------------
_SEAM_BASE = (
    "class CommitProtocol:\n"
    "    def commit(self, transaction):\n"
    "        raise NotImplementedError\n"
)


class TestRep005:
    def test_catches_missing_override(self):
        bad = _SEAM_BASE + (
            "class Lazy(CommitProtocol):\n"
            "    name = 'lazy'\n"
            "_PROTOCOLS = {Lazy.name: Lazy}\n"
        )
        violations = lint_sources({"src/repro/distributed/commit.py": bad})
        assert any(
            v.rule == "REP005" and "does not override" in v.message for v in violations
        )

    def test_catches_unregistered_subclass(self):
        bad = _SEAM_BASE + (
            "class Eager(CommitProtocol):\n"
            "    name = 'eager'\n"
            "    def commit(self, transaction):\n"
            "        return True\n"
        )
        violations = lint_sources({"src/repro/distributed/commit.py": bad})
        assert any(
            v.rule == "REP005" and "not registered" in v.message for v in violations
        )

    def test_catches_cli_choices_drift(self):
        sources = {
            "src/repro/distributed/commit.py": _SEAM_BASE
            + (
                "class Eager(CommitProtocol):\n"
                "    name = 'eager'\n"
                "    def commit(self, transaction):\n"
                "        return True\n"
                "_PROTOCOLS = {Eager.name: Eager}\n"
            ),
            "src/repro/cli.py": (
                "def build(parser):\n"
                "    parser.add_argument('--commit-protocol', choices=['one-phase'])\n"
            ),
        }
        violations = lint_sources(sources)
        assert any(
            v.rule == "REP005" and "CLI choices" in v.message for v in violations
        )

    def test_allows_conforming_subclass(self):
        good = {
            "src/repro/distributed/commit.py": _SEAM_BASE
            + (
                "class Eager(CommitProtocol):\n"
                "    name = 'eager'\n"
                "    def commit(self, transaction):\n"
                "        return True\n"
                "_PROTOCOLS = {Eager.name: Eager}\n"
            ),
            "src/repro/cli.py": (
                "def build(parser):\n"
                "    parser.add_argument('--commit-protocol', choices=['eager'])\n"
            ),
        }
        assert "REP005" not in rules_in(good)

    def test_allows_override_via_intermediate(self):
        good = _SEAM_BASE + (
            "class _Base(CommitProtocol):\n"
            "    def commit(self, transaction):\n"
            "        return True\n"
            "class Eager(_Base):\n"
            "    name = 'eager'\n"
            "_PROTOCOLS = {Eager.name: Eager}\n"
        )
        violations = lint_sources({"src/repro/distributed/commit.py": good})
        assert not any(
            v.rule == "REP005" and "does not override" in v.message for v in violations
        )

    def test_private_intermediate_not_checked(self):
        code = _SEAM_BASE + "class _Helper(CommitProtocol):\n    pass\n"
        assert "REP005" not in rules_in({"src/repro/distributed/commit.py": code})


# ---------------------------------------------------------------------------
# REP006 — counters must be surfaced
# ---------------------------------------------------------------------------
class TestRep006:
    def test_catches_unread_statistics_counter(self):
        bad = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class FooStatistics:\n"
            "    lost_counter: int = 0\n"
            "class User:\n"
            "    def bump(self):\n"
            "        self.stats.lost_counter += 1\n"
        )
        assert "REP006" in rules_in({"src/repro/core/x.py": bad})

    def test_catches_run_metrics_field_not_in_counters(self):
        bad = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class RunMetrics:\n"
            "    completions: int\n"
            "    forgotten: int\n"
            "    def counters(self):\n"
            "        return {'completions': self.completions}\n"
        )
        violations = lint_sources({"src/repro/sim/metrics.py": bad})
        assert any(
            v.rule == "REP006" and "forgotten" in v.message for v in violations
        )

    def test_allows_surfaced_counter(self):
        good = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class FooStatistics:\n"
            "    kept: int = 0\n"
            "class User:\n"
            "    def bump(self):\n"
            "        self.stats.kept += 1\n"
            "    def summary(self):\n"
            "        return {'kept': self.stats.kept}\n"
        )
        assert "REP006" not in rules_in({"src/repro/core/x.py": good})


# ---------------------------------------------------------------------------
# REP007 — per-event-path classes must declare __slots__
# ---------------------------------------------------------------------------
class TestRep007:
    def test_catches_slotless_class_instantiated_in_method(self):
        bad = (
            "class Token:\n"
            "    pass\n"
            "class Engine:\n"
            "    def fire(self):\n"
            "        return Token()\n"
        )
        assert "REP007" in rules_in({"src/repro/sim/x.py": bad})

    def test_catches_cross_file_instantiation(self):
        sources = {
            "src/repro/distributed/a.py": "class Branch:\n    pass\n",
            "src/repro/distributed/b.py": (
                "from .a import Branch\n"
                "def submit():\n"
                "    return Branch()\n"
            ),
        }
        assert "REP007" in rules_in(sources)

    def test_allows_slots_class(self):
        good = (
            "class Token:\n"
            "    __slots__ = ('value',)\n"
            "class Engine:\n"
            "    def fire(self):\n"
            "        return Token()\n"
        )
        assert "REP007" not in rules_in({"src/repro/sim/x.py": good})

    def test_allows_dataclass_with_slots(self):
        good = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True, slots=True)\n"
            "class Token:\n"
            "    value: int\n"
            "def fire():\n"
            "    return Token(1)\n"
        )
        assert "REP007" not in rules_in({"src/repro/sim/x.py": good})

    def test_allows_instantiation_in_init(self):
        # __init__ is setup wiring, not a per-event path.
        good = (
            "class Queue:\n"
            "    pass\n"
            "class Engine:\n"
            "    def __init__(self):\n"
            "        self.queue = Queue()\n"
        )
        assert "REP007" not in rules_in({"src/repro/sim/x.py": good})

    def test_allows_allow_listed_per_run_class(self):
        good = (
            "class RunMetrics:\n"
            "    pass\n"
            "class Collector:\n"
            "    def freeze(self):\n"
            "        return RunMetrics()\n"
        )
        assert "REP007" not in rules_in({"src/repro/sim/metrics.py": good})

    def test_allows_exception_and_enum_subclasses(self):
        good = (
            "from enum import Enum\n"
            "class Status(Enum):\n"
            "    OK = 1\n"
            "class SimError(ValueError):\n"
            "    pass\n"
            "def f():\n"
            "    raise SimError(Status.OK)\n"
        )
        assert "REP007" not in rules_in({"src/repro/sim/x.py": good})

    def test_outside_sim_distributed_not_checked(self):
        code = (
            "class Token:\n"
            "    pass\n"
            "def fire():\n"
            "    return Token()\n"
        )
        assert "REP007" not in rules_in({"src/repro/core/x.py": code})

    def test_pragma_suppresses(self):
        code = (
            "class Token:\n"
            "    pass\n"
            "def fire():\n"
            "    return Token()  # repro-lint: disable=REP007\n"
        )
        assert "REP007" not in rules_in({"src/repro/sim/x.py": code})


# ---------------------------------------------------------------------------
# REP008 — no tuple-keyed dict lookups on per-event paths
# ---------------------------------------------------------------------------
class TestRep008:
    def test_catches_subscript_with_tuple_key(self):
        bad = (
            "def probe(cache, a, b):\n"
            "    return cache[(a, b)]\n"
        )
        assert "REP008" in rules_in({"src/repro/core/x.py": bad})

    def test_catches_get_with_tuple_key(self):
        bad = (
            "def probe(cache, a, b):\n"
            "    return cache.get((a, b))\n"
        )
        assert "REP008" in rules_in({"src/repro/sim/x.py": bad})

    def test_catches_setdefault_and_pop_with_tuple_key(self):
        bad = (
            "def track(cache, a, b):\n"
            "    cache.setdefault((a, b), 0)\n"
            "    cache.pop((b, a), None)\n"
        )
        violations = lint_sources({"src/repro/distributed/x.py": bad})
        assert sum(1 for v in violations if v.rule == "REP008") == 2

    def test_allows_interned_index(self):
        good = (
            "def probe(table, requested_id, executed_id, n_ops):\n"
            "    return table[requested_id * n_ops + executed_id]\n"
        )
        assert "REP008" not in rules_in({"src/repro/core/x.py": good})

    def test_allows_init_and_allow_listed_functions(self):
        good = (
            "class Manager:\n"
            "    def __init__(self, pairs):\n"
            "        self.cache = {}\n"
            "        for a, b in pairs:\n"
            "            self.cache.get((a, b))\n"
            "    def _compile_policy(self, policy):\n"
            "        return self.cache[(policy, 0)]\n"
        )
        assert "REP008" not in rules_in({"src/repro/core/x.py": good})

    def test_allows_type_annotations(self):
        good = (
            "from typing import Dict, Tuple\n"
            "def build() -> Dict[Tuple[int, str], int]:\n"
            "    versions: Dict[Tuple[int, str], int] = {}\n"
            "    return versions\n"
        )
        assert "REP008" not in rules_in({"src/repro/distributed/x.py": good})

    def test_outside_checked_packages_not_checked(self):
        code = (
            "def probe(cache, a, b):\n"
            "    return cache[(a, b)]\n"
        )
        assert "REP008" not in rules_in({"src/repro/analysis/x.py": code})

    def test_pragma_suppresses(self):
        code = (
            "def probe(cache, a, b):\n"
            "    return cache[(a, b)]  # repro-lint: disable=REP008\n"
        )
        assert "REP008" not in rules_in({"src/repro/core/x.py": code})


# ---------------------------------------------------------------------------
# REP009 — no lambda/closure allocation inside per-event functions
# ---------------------------------------------------------------------------
class TestRep009:
    def test_catches_lambda_in_function_body(self):
        bad = (
            "def fire(engine, target, delay):\n"
            "    engine.schedule(delay, lambda: target.step())\n"
        )
        assert "REP009" in rules_in({"src/repro/sim/x.py": bad})

    def test_catches_nested_function(self):
        bad = (
            "def fire(engine, target, delay):\n"
            "    def callback():\n"
            "        target.step()\n"
            "    engine.schedule(delay, callback)\n"
        )
        assert "REP009" in rules_in({"src/repro/distributed/x.py": bad})

    def test_allows_module_and_class_scope_lambdas(self):
        good = (
            "KEY = lambda pair: pair[0]\n"
            "class Ranked:\n"
            "    order = staticmethod(lambda pair: pair[1])\n"
        )
        assert "REP009" not in rules_in({"src/repro/sim/x.py": good})

    def test_allows_setup_methods(self):
        good = (
            "class Model:\n"
            "    def __init__(self, backend):\n"
            "        self.factory = lambda: backend\n"
            "    def reset(self):\n"
            "        def rebuild():\n"
            "            return None\n"
            "        self.factory = rebuild\n"
        )
        assert "REP009" not in rules_in({"src/repro/sim/x.py": good})

    def test_allows_allow_listed_function(self):
        good = (
            "class Router:\n"
            "    def _rebind_submit(self):\n"
            "        def fast_submit(tid):\n"
            "            return tid\n"
            "        self.submit = fast_submit\n"
        )
        assert "REP009" not in rules_in({"src/repro/distributed/x.py": good})

    def test_allows_method_default_evaluated_at_import(self):
        # A lambda default on a module-level function or method is built
        # once at definition time, not per call.
        good = (
            "class Ranker:\n"
            "    def rank(self, items, key=lambda item: item):\n"
            "        return sorted(items, key=key)\n"
        )
        assert "REP009" not in rules_in({"src/repro/distributed/x.py": good})

    def test_outside_checked_packages_not_checked(self):
        code = (
            "def fire(engine, target, delay):\n"
            "    engine.schedule(delay, lambda: target.step())\n"
        )
        assert "REP009" not in rules_in({"src/repro/analysis/x.py": code})

    def test_pragma_suppresses(self):
        code = (
            "def fire(engine, target, delay):\n"
            "    engine.schedule(delay, lambda: target.step())  # repro-lint: disable=REP009\n"
        )
        assert "REP009" not in rules_in({"src/repro/sim/x.py": code})


# ---------------------------------------------------------------------------
# REP010 — pool-managed request boxes are constructed only by their pools
# ---------------------------------------------------------------------------
class TestRep010:
    def test_catches_direct_handle_construction_in_sim(self):
        bad = (
            "def issue(tid, name, invocation):\n"
            "    return RequestHandle(tid, name, invocation)\n"
        )
        assert "REP010" in rules_in({"src/repro/sim/x.py": bad})

    def test_catches_direct_pending_construction_in_distributed(self):
        bad = (
            "def enqueue(request):\n"
            "    return PendingRequest(request)\n"
        )
        assert "REP010" in rules_in({"src/repro/distributed/x.py": bad})

    def test_catches_attribute_form_construction(self):
        bad = (
            "from repro.core import requests\n"
            "def issue(tid, name, invocation):\n"
            "    return requests.RequestHandle(tid, name, invocation)\n"
        )
        assert "REP010" in rules_in({"src/repro/sim/x.py": bad})

    def test_allows_construction_in_core(self):
        # repro.core owns the pools and their factories; construction there
        # is the legitimate freelist-miss path.
        good = (
            "def make(tid, name, invocation):\n"
            "    return RequestHandle(tid, name, invocation)\n"
        )
        assert "REP010" not in rules_in({"src/repro/core/x.py": good})

    def test_allows_annotations_and_unrelated_names(self):
        good = (
            "def track(handle: 'RequestHandle') -> 'RequestHandle':\n"
            "    box = Request(handle)\n"
            "    return handle\n"
        )
        assert "REP010" not in rules_in({"src/repro/sim/x.py": good})

    def test_outside_checked_packages_not_checked(self):
        code = (
            "def make(tid):\n"
            "    return RequestHandle(tid, 'x', None)\n"
        )
        assert "REP010" not in rules_in({"src/repro/analysis/x.py": code})

    def test_pragma_suppresses(self):
        code = (
            "def make(tid):\n"
            "    return RequestHandle(tid, 'x', None)  # repro-lint: disable=REP010\n"
        )
        assert "REP010" not in rules_in({"src/repro/sim/x.py": code})


# ---------------------------------------------------------------------------
# Pragmas
# ---------------------------------------------------------------------------
class TestPragma:
    def test_named_pragma_suppresses_that_rule(self):
        code = "import random  # repro-lint: disable=REP001\n"
        assert rules_in({"src/repro/sim/x.py": code}) == set()

    def test_named_pragma_keeps_other_rules(self):
        code = "import random  # repro-lint: disable=REP003\n"
        assert "REP001" in rules_in({"src/repro/sim/x.py": code})

    def test_bare_pragma_suppresses_everything(self):
        code = "import random  # repro-lint: disable\n"
        assert rules_in({"src/repro/sim/x.py": code}) == set()


# ---------------------------------------------------------------------------
# The meta-test: the repo's own tree is clean, through the real CLI
# ---------------------------------------------------------------------------
class TestRepoTree:
    def test_repo_tree_is_clean(self):
        violations = lint_paths([str(REPO_SRC)])
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_cli_lint_exits_zero_on_repo(self):
        out = io.StringIO()
        assert main(["lint", str(REPO_SRC)], out=out) == 0
        assert "no violations" in out.getvalue()

    def test_cli_lint_json_reports_counts(self):
        out = io.StringIO()
        assert main(["lint", "--json", str(REPO_SRC)], out=out) == 0
        payload = json.loads(out.getvalue())
        assert set(payload) == {"checked_files", "counts", "violations"}
        assert payload["violations"] == []
        assert set(payload["counts"]) == {
            "REP001", "REP002", "REP003", "REP004", "REP005", "REP006", "REP007",
            "REP008", "REP009", "REP010",
        }
        assert payload["checked_files"] > 20

    def test_cli_lint_exits_nonzero_on_bad_file(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\n")
        out = io.StringIO()
        assert main(["lint", str(bad)], out=out) == 1
        assert "REP001" in out.getvalue()

    def test_rule_counts_accounts_every_violation(self):
        violations = lint_sources(
            {"src/repro/sim/x.py": "import random\nimport secrets\n"}
        )
        counts = rule_counts(violations)
        assert counts["REP001"] == 2
        assert sum(counts.values()) == len(violations)
