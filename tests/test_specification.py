"""Unit tests for the operation/type specification framework."""

import pytest

from repro.core.errors import SpecificationError, UnknownOperationError
from repro.core.specification import (
    Event,
    FunctionalTypeSpecification,
    Invocation,
    OperationResult,
    OperationSpec,
    apply_sequence,
)


def _add(state, args):
    return OperationResult(state=state + args[0], value="ok")


def _get(state, args):
    return OperationResult(state=state, value=state)


def make_adder_spec():
    return FunctionalTypeSpecification(
        name="adder",
        initial_state=0,
        operations={
            "add": OperationSpec(name="add", function=_add),
            "get": OperationSpec(name="get", function=_get, is_read_only=True),
        },
    )


class TestOperationSpec:
    def test_apply_returns_operation_result(self):
        spec = OperationSpec(name="add", function=_add)
        result = spec.apply(10, (5,))
        assert result.state == 15
        assert result.value == "ok"

    def test_apply_rejects_non_operation_result(self):
        bad = OperationSpec(name="bad", function=lambda state, args: (state, "oops"))
        with pytest.raises(SpecificationError):
            bad.apply(0, ())

    def test_read_only_flag_defaults_false(self):
        assert OperationSpec(name="add", function=_add).is_read_only is False

    def test_inverse_defaults_none(self):
        assert OperationSpec(name="add", function=_add).inverse is None


class TestInvocation:
    def test_defaults_to_empty_args(self):
        assert Invocation("read").args == ()

    def test_str_renders_like_a_call(self):
        assert str(Invocation("push", (4,))) == "push(4)"

    def test_equality_and_hash(self):
        assert Invocation("push", (4,)) == Invocation("push", (4,))
        assert Invocation("push", (4,)) != Invocation("push", (5,))
        assert len({Invocation("push", (4,)), Invocation("push", (4,))}) == 1


class TestEvent:
    def test_str_uses_paper_notation(self):
        event = Event("X", Invocation("insert", (3,)), "ok", 1)
        assert str(event) == "X: (insert(3), 'ok', T1)"

    def test_events_are_hashable_values(self):
        event = Event("X", Invocation("insert", (3,)), "ok", 1, sequence=7)
        assert event.sequence == 7
        assert hash(event) == hash(Event("X", Invocation("insert", (3,)), "ok", 1, sequence=7))


class TestTypeSpecification:
    def test_operation_lookup(self):
        spec = make_adder_spec()
        assert spec.operation("add").name == "add"

    def test_unknown_operation_raises(self):
        spec = make_adder_spec()
        with pytest.raises(UnknownOperationError):
            spec.operation("multiply")

    def test_operation_names_order_is_stable(self):
        spec = make_adder_spec()
        assert spec.operation_names() == ("add", "get")

    def test_apply_and_components(self):
        spec = make_adder_spec()
        invocation = Invocation("add", (3,))
        assert spec.next_state(0, invocation) == 3
        assert spec.return_value(0, invocation) == "ok"
        assert spec.apply(0, Invocation("get")).value == 0

    def test_default_samples_use_initial_state(self):
        spec = make_adder_spec()
        assert spec.sample_states() == [0]
        assert spec.sample_invocations("get") == [Invocation("get")]

    def test_default_conflict_parameter_is_args(self):
        spec = make_adder_spec()
        assert spec.conflict_parameter(Invocation("add", (3,))) == (3,)

    def test_compatibility_raises_without_declaration(self):
        spec = make_adder_spec()
        with pytest.raises(SpecificationError):
            spec.compatibility()

    def test_states_equal_defaults_to_equality(self):
        spec = make_adder_spec()
        assert spec.states_equal(3, 3)
        assert not spec.states_equal(3, 4)


class TestFunctionalTypeSpecification:
    def test_custom_samples_are_returned(self):
        spec = FunctionalTypeSpecification(
            name="adder",
            initial_state=0,
            operations={"add": OperationSpec(name="add", function=_add)},
            sample_states=[0, 2],
            sample_invocations={"add": [Invocation("add", (1,))]},
        )
        assert spec.sample_states() == [0, 2]
        assert spec.sample_invocations("add") == [Invocation("add", (1,))]

    def test_initial_state(self):
        spec = make_adder_spec()
        assert spec.initial_state() == 0


class TestApplySequence:
    def test_empty_sequence_returns_input_state(self):
        spec = make_adder_spec()
        result = apply_sequence(spec, 5, [])
        assert result.state == 5
        assert result.value is None

    def test_sequence_threads_state_and_returns_last_value(self):
        spec = make_adder_spec()
        result = apply_sequence(
            spec, 0, [Invocation("add", (2,)), Invocation("add", (3,)), Invocation("get")]
        )
        assert result.state == 5
        assert result.value == 5
