"""Tests for the recovery utilities: intentions lists and undo logs."""

import pytest

from repro.core.errors import RecoveryError
from repro.core.recovery import IntentionsList, UndoLog
from repro.core.specification import Invocation


class TestIntentionsList:
    def test_record_and_apply(self, counter_type):
        objects = {"C": counter_type.make_object("C")}
        intentions = IntentionsList(transaction_id=1)
        intentions.record("C", Invocation("increment", (5,)))
        intentions.record("C", Invocation("increment", (3,)))
        values = intentions.apply_to(objects)
        assert values == ["ok", "ok"]
        assert objects["C"].state == 8

    def test_abort_is_just_clearing(self, counter_type):
        objects = {"C": counter_type.make_object("C")}
        intentions = IntentionsList(transaction_id=1)
        intentions.record("C", Invocation("increment", (5,)))
        intentions.clear()
        assert len(intentions) == 0
        assert objects["C"].state == 0

    def test_drop_matches_the_paper_push_example(self, stack_type):
        intentions = IntentionsList(transaction_id=1)
        intentions.record("S", Invocation("push", (4,)))
        intentions.record("S", Invocation("push", (2,)))
        assert intentions.drop("S", Invocation("push", (4,)))
        assert not intentions.drop("S", Invocation("push", (9,)))
        assert [entry.invocation.args for entry in intentions.entries] == [(2,)]

    def test_apply_to_unknown_object_raises(self):
        intentions = IntentionsList(transaction_id=1)
        intentions.record("missing", Invocation("increment"))
        with pytest.raises(RecoveryError):
            intentions.apply_to({})


class TestUndoLogLogical:
    def test_counter_undo_restores_value(self, counter_type):
        objects = {"C": counter_type.make_object("C")}
        undo = UndoLog(transaction_id=1)
        for amount in (5, 3):
            before = objects["C"].snapshot()
            value = objects["C"].execute("increment", amount)
            undo.record("C", counter_type, Invocation("increment", (amount,)), before, value)
        assert objects["C"].state == 8
        assert undo.undo_logical(objects) == 2
        assert objects["C"].state == 0
        assert len(undo) == 0

    def test_read_only_operations_are_skipped(self, counter_type):
        objects = {"C": counter_type.make_object("C")}
        undo = UndoLog(transaction_id=1)
        before = objects["C"].snapshot()
        value = objects["C"].execute("read")
        undo.record("C", counter_type, Invocation("read"), before, value)
        assert undo.undo_logical(objects) == 0

    def test_missing_inverse_raises(self, set_type):
        objects = {"X": set_type.make_object("X")}
        undo = UndoLog(transaction_id=1)
        before = objects["X"].snapshot()
        value = objects["X"].execute("insert", 3)
        undo.record("X", set_type, Invocation("insert", (3,)), before, value)
        with pytest.raises(RecoveryError):
            undo.undo_logical(objects)

    def test_stack_logical_undo_without_interleaving(self, stack_type):
        objects = {"S": stack_type.make_object("S")}
        undo = UndoLog(transaction_id=1)
        before = objects["S"].snapshot()
        value = objects["S"].execute("push", 4)
        undo.record("S", stack_type, Invocation("push", (4,)), before, value)
        undo.undo_logical(objects)
        assert objects["S"].state == ()


class TestUndoLogPhysical:
    def test_physical_undo_restores_before_image(self, stack_type):
        objects = {"S": stack_type.make_object("S")}
        undo = UndoLog(transaction_id=1)
        for element in (4, 2):
            before = objects["S"].snapshot()
            value = objects["S"].execute("push", element)
            undo.record("S", stack_type, Invocation("push", (element,)), before, value)
        assert undo.undo_physical(objects) == 1
        assert objects["S"].state == ()

    def test_unknown_object_raises(self, stack_type):
        undo = UndoLog(transaction_id=1)
        undo.record("S", stack_type, Invocation("push", (4,)), (), "ok")
        with pytest.raises(RecoveryError):
            undo.undo_physical({})


class TestEquivalenceWithSchedulerReplay:
    def test_logical_undo_matches_scheduler_abort_for_commuting_updates(self, counter_type):
        """For commuting updates (counter increments) logical undo and the
        scheduler's replay-based undo agree even with interleaving."""
        from repro.core.policy import ConflictPolicy
        from repro.core.scheduler import Scheduler

        scheduler = Scheduler(policy=ConflictPolicy.RECOVERABILITY)
        scheduler.register_object("C", counter_type)
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.perform(t1.tid, "C", "increment", 5)
        scheduler.perform(t2.tid, "C", "increment", 3)
        scheduler.abort(t1.tid)
        scheduler.commit(t2.tid)
        replay_result = scheduler.committed_state("C")

        objects = {"C": counter_type.make_object("C")}
        undo = UndoLog(transaction_id=1)
        before = objects["C"].snapshot()
        value = objects["C"].execute("increment", 5)
        undo.record("C", counter_type, Invocation("increment", (5,)), before, value)
        objects["C"].execute("increment", 3)
        undo.undo_logical(objects)
        assert objects["C"].state == replay_result == 3
