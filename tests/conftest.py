"""Shared fixtures for the test suite."""

import pytest

from repro.adts import (
    CounterType,
    PageType,
    QueueType,
    SetType,
    StackType,
    TableType,
)
from repro.core.policy import ConflictPolicy
from repro.core.scheduler import Scheduler
from repro.sim.params import SimulationParameters


@pytest.fixture
def page_type():
    return PageType()


@pytest.fixture
def stack_type():
    return StackType()


@pytest.fixture
def set_type():
    return SetType()


@pytest.fixture
def table_type():
    return TableType()


@pytest.fixture
def counter_type():
    return CounterType()


@pytest.fixture
def queue_type():
    return QueueType()


@pytest.fixture
def recoverability_scheduler():
    """A fresh scheduler using the recoverability policy."""
    return Scheduler(policy=ConflictPolicy.RECOVERABILITY)


@pytest.fixture
def commutativity_scheduler():
    """A fresh scheduler using the commutativity-only baseline."""
    return Scheduler(policy=ConflictPolicy.COMMUTATIVITY)


@pytest.fixture
def stack_scheduler(recoverability_scheduler, stack_type):
    """Recoverability scheduler with a single stack object named ``S``."""
    recoverability_scheduler.register_object("S", stack_type)
    return recoverability_scheduler


def _small_sim_params(**overrides):
    """Simulation parameters small enough for unit tests (sub-second runs)."""
    defaults = dict(
        database_size=60,
        num_terminals=30,
        mpl_level=10,
        total_completions=60,
        seed=11,
    )
    defaults.update(overrides)
    return SimulationParameters(**defaults)


@pytest.fixture
def small_sim_params():
    """Factory fixture: build test-sized simulation parameters with overrides."""
    return _small_sim_params


@pytest.fixture
def tiny_params():
    return _small_sim_params()
