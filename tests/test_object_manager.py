"""Tests for the per-object manager: classification, execution, removal."""


from repro.adts import StackType, TableType
from repro.core.compatibility import ConflictClass
from repro.core.object_manager import ObjectManager, PendingRequest
from repro.core.policy import ConflictPolicy
from repro.core.specification import Invocation


def make_stack_manager(**kwargs):
    return ObjectManager(name="S", spec=StackType(), **kwargs)


class TestClassification:
    def test_empty_log_is_commutative(self):
        manager = make_stack_manager()
        result = manager.classify_request(Invocation("push", (1,)), 1, ConflictPolicy.RECOVERABILITY)
        assert result.is_commutative and result.admissible

    def test_own_operations_are_ignored(self):
        manager = make_stack_manager()
        manager.execute(Invocation("push", (1,)), transaction_id=1, sequence=1)
        result = manager.classify_request(Invocation("pop"), 1, ConflictPolicy.RECOVERABILITY)
        assert result.is_commutative

    def test_recoverable_classification(self):
        manager = make_stack_manager()
        manager.execute(Invocation("push", (1,)), transaction_id=1, sequence=1)
        result = manager.classify_request(Invocation("push", (2,)), 2, ConflictPolicy.RECOVERABILITY)
        assert result.recoverable == {1}
        assert result.admissible and not result.is_commutative

    def test_conflict_classification(self):
        manager = make_stack_manager()
        manager.execute(Invocation("push", (1,)), transaction_id=1, sequence=1)
        result = manager.classify_request(Invocation("pop"), 2, ConflictPolicy.RECOVERABILITY)
        assert result.conflicting == {1}
        assert not result.admissible

    def test_commutativity_policy_downgrades_recoverable(self):
        manager = make_stack_manager()
        manager.execute(Invocation("push", (1,)), transaction_id=1, sequence=1)
        result = manager.classify_request(Invocation("push", (2,)), 2, ConflictPolicy.COMMUTATIVITY)
        assert result.conflicting == {1}
        assert result.recoverable == set()

    def test_conflict_wins_over_recoverable_for_same_transaction(self):
        manager = make_stack_manager()
        manager.execute(Invocation("push", (1,)), transaction_id=1, sequence=1)
        manager.execute(Invocation("pop"), transaction_id=1, sequence=2)
        # push is recoverable w.r.t. both, pop conflicts with a later pop.
        result = manager.classify_request(Invocation("pop"), 2, ConflictPolicy.RECOVERABILITY)
        assert result.conflicting == {1}
        assert 1 not in result.recoverable

    def test_classify_pair_uses_parameter_semantics(self):
        manager = ObjectManager(name="T", spec=TableType())
        same_key = manager.classify_pair(
            Invocation("insert", ("k", "x")),
            Invocation("lookup", ("k",)),
            ConflictPolicy.RECOVERABILITY,
        )
        different_key = manager.classify_pair(
            Invocation("insert", ("k1", "x")),
            Invocation("lookup", ("k2",)),
            ConflictPolicy.RECOVERABILITY,
        )
        assert same_key is ConflictClass.RECOVERABLE
        assert different_key is ConflictClass.COMMUTATIVE


class TestBlockedQueue:
    def test_blocked_conflicts_and_upto(self):
        manager = make_stack_manager()
        manager.enqueue_blocked(PendingRequest(transaction_id=1, invocation=Invocation("pop")))
        manager.enqueue_blocked(PendingRequest(transaction_id=2, invocation=Invocation("pop")))
        owners = manager.blocked_conflicts(Invocation("pop"), 3, ConflictPolicy.RECOVERABILITY)
        assert owners == {1, 2}
        only_first = manager.blocked_conflicts(
            Invocation("pop"), 3, ConflictPolicy.RECOVERABILITY, upto=1
        )
        assert only_first == {1}

    def test_blocked_conflicts_ignores_recoverable_pairs(self):
        manager = make_stack_manager()
        manager.enqueue_blocked(PendingRequest(transaction_id=1, invocation=Invocation("top")))
        # push is recoverable relative to the blocked top, so fairness does
        # not require the push to wait behind it.
        owners = manager.blocked_conflicts(
            Invocation("push", (1,)), 3, ConflictPolicy.RECOVERABILITY
        )
        assert owners == set()

    def test_blocked_conflicts_skips_own_requests(self):
        manager = make_stack_manager()
        manager.enqueue_blocked(PendingRequest(transaction_id=1, invocation=Invocation("pop")))
        assert manager.blocked_conflicts(Invocation("pop"), 1, ConflictPolicy.RECOVERABILITY) == set()

    def test_remove_blocked_of(self):
        manager = make_stack_manager()
        manager.enqueue_blocked(PendingRequest(transaction_id=1, invocation=Invocation("pop")))
        manager.enqueue_blocked(PendingRequest(transaction_id=2, invocation=Invocation("pop")))
        removed = manager.remove_blocked_of(1)
        assert [p.transaction_id for p in removed] == [1]
        assert [p.transaction_id for p in manager.blocked] == [2]


class TestExecutionAndRemoval:
    def test_execute_updates_state_and_log(self):
        manager = make_stack_manager()
        event = manager.execute(Invocation("push", (4,)), transaction_id=1, sequence=1)
        assert event.value == "ok"
        assert manager.current_state == (4,)
        assert manager.committed_state == ()
        assert manager.live_transactions() == {1}

    def test_commit_folds_operations_into_committed_state(self):
        manager = make_stack_manager()
        manager.execute(Invocation("push", (4,)), 1, 1)
        manager.execute(Invocation("push", (2,)), 2, 2)
        manager.remove_transaction(1, commit=True)
        assert manager.committed_state == (4,)
        assert manager.current_state == (4, 2)
        assert manager.live_transactions() == {2}

    def test_abort_replays_survivors_over_committed_state(self):
        manager = make_stack_manager()
        manager.execute(Invocation("push", (4,)), 1, 1)
        manager.execute(Invocation("push", (2,)), 2, 2)
        removed = manager.remove_transaction(1, commit=False)
        assert [e.invocation.op for e in removed] == ["push"]
        assert manager.committed_state == ()
        assert manager.current_state == (2,)

    def test_remove_unknown_transaction_is_noop(self):
        manager = make_stack_manager()
        assert manager.remove_transaction(42, commit=True) == []

    def test_commit_respecting_dependency_order_matches_direct_execution(self):
        manager = make_stack_manager()
        manager.execute(Invocation("push", (4,)), 1, 1)
        manager.execute(Invocation("push", (2,)), 2, 2)
        manager.remove_transaction(1, commit=True)
        manager.remove_transaction(2, commit=True)
        assert manager.committed_state == (4, 2)

    def test_events_of(self):
        manager = make_stack_manager()
        manager.execute(Invocation("push", (4,)), 1, 1)
        manager.execute(Invocation("push", (2,)), 2, 2)
        assert [e.invocation.args for e in manager.events_of(1)] == [(4,)]

    def test_unmaterialized_manager_skips_state(self):
        manager = ObjectManager(
            name="A", spec=StackType(), materialize_state=False
        )
        event = manager.execute(Invocation("push", (4,)), 1, 1)
        assert event.value is None
        assert manager.current_state == ()
        manager.remove_transaction(1, commit=True)
        assert manager.committed_state == ()

    def test_initial_state_override(self):
        manager = ObjectManager(name="S", spec=StackType(), initial_state=(9,))
        assert manager.current_state == (9,)
        assert manager.committed_state == (9,)
