"""Tests for the discrete-event engine, random source, and resource model."""

import pytest

from repro.core.errors import SimulationError
from repro.sim.engine import EventEngine
from repro.sim.params import SimulationParameters
from repro.sim.random_source import RandomSource
from repro.sim.resources import FifoServer, ResourceModel


class TestEventEngine:
    def test_events_fire_in_time_order(self):
        engine = EventEngine()
        fired = []
        engine.schedule(2.0, lambda: fired.append("late"))
        engine.schedule(1.0, lambda: fired.append("early"))
        engine.run()
        assert fired == ["early", "late"]
        assert engine.now == 2.0

    def test_simultaneous_events_fire_fifo(self):
        engine = EventEngine()
        fired = []
        for label in ("a", "b", "c"):
            engine.schedule(1.0, lambda label=label: fired.append(label))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        engine = EventEngine()
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_schedule_at_past_time_rejected(self):
        engine = EventEngine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda: None)

    def test_cancelled_events_are_skipped(self):
        engine = EventEngine()
        fired = []
        event = engine.schedule_cancellable(1.0, lambda: fired.append("cancelled"))
        engine.schedule(2.0, lambda: fired.append("kept"))
        event.cancel()
        engine.run()
        assert fired == ["kept"]
        assert engine.events_processed == 1
        assert engine.pending() == 0

    def test_cancellable_negative_delay_rejected(self):
        engine = EventEngine()
        with pytest.raises(SimulationError):
            engine.schedule_cancellable(-1.0, lambda: None)

    def test_cancellable_event_fires_when_not_cancelled(self):
        engine = EventEngine()
        fired = []
        engine.schedule_cancellable(1.0, lambda: fired.append("kept"))
        assert engine.pending() == 1
        engine.run()
        assert fired == ["kept"]

    def test_run_until_predicate(self):
        engine = EventEngine()
        fired = []
        for i in range(5):
            engine.schedule(float(i + 1), lambda i=i: fired.append(i))
        engine.run(until=lambda: len(fired) >= 2)
        assert fired == [0, 1]
        assert engine.pending() == 3

    def test_run_raises_if_queue_drains_before_condition(self):
        engine = EventEngine()
        engine.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            engine.run(until=lambda: False)

    def test_max_events_safety_valve(self):
        engine = EventEngine()

        def reschedule():
            engine.schedule(1.0, reschedule)

        engine.schedule(1.0, reschedule)
        with pytest.raises(SimulationError):
            engine.run(until=lambda: False, max_events=10)

    def test_deadlock_thrash_backs_off_and_completes(self):
        # Regression: at mpl=8 over 24 objects under COMMUTATIVITY/adt this
        # exact configuration used to livelock — the 15 fixed templates
        # re-formed the same deadlock cycle on every zero-delay restart and
        # the run burned >6M events completing 21 of 40 transactions.  The
        # escalating restart backoff in Simulation.on_aborted staggers the
        # group; the whole run now takes a few thousand events.
        from repro.core.policy import ConflictPolicy
        from repro.sim.simulator import Simulation

        params = SimulationParameters(
            database_size=24,
            num_terminals=15,
            mpl_level=8,
            total_completions=40,
            policy=ConflictPolicy.COMMUTATIVITY,
            seed=24,
        )
        simulation = Simulation(params, workload_kind="adt")
        metrics = simulation.run()
        assert metrics.completions >= 40
        assert simulation.engine.events_processed < 100_000


class TestRandomSource:
    def test_same_seed_same_stream(self):
        a, b = RandomSource(42), RandomSource(42)
        assert [a.uniform_int(1, 100) for _ in range(10)] == [
            b.uniform_int(1, 100) for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        a, b = RandomSource(1), RandomSource(2)
        assert [a.uniform_int(1, 1000) for _ in range(10)] != [
            b.uniform_int(1, 1000) for _ in range(10)
        ]

    def test_exponential_mean_zero_returns_zero(self):
        assert RandomSource(1).exponential(0.0) == 0.0

    def test_exponential_is_positive(self):
        rng = RandomSource(3)
        assert all(rng.exponential(1.0) >= 0 for _ in range(100))

    def test_bernoulli_extremes(self):
        rng = RandomSource(5)
        assert not any(rng.bernoulli(0.0) for _ in range(50))
        assert all(rng.bernoulli(1.0) for _ in range(50))

    def test_choice_sample_shuffle(self):
        rng = RandomSource(7)
        items = list(range(10))
        assert rng.choice(items) in items
        sample = rng.sample(items, 3)
        assert len(sample) == 3 and len(set(sample)) == 3
        shuffled = rng.shuffle(items)
        assert sorted(shuffled) == items
        assert items == list(range(10))  # original untouched

    def test_spawn_is_deterministic_and_independent(self):
        parent_a, parent_b = RandomSource(9), RandomSource(9)
        child_a, child_b = parent_a.spawn("workload"), parent_b.spawn("workload")
        assert child_a.uniform_int(1, 10**6) == child_b.uniform_int(1, 10**6)
        other = RandomSource(9).spawn("think")
        assert other.seed != child_a.seed


class TestFifoServer:
    def test_acquire_release_without_contention(self):
        server = FifoServer("cpu", 2)
        served = []
        server.acquire(lambda: served.append(1))
        server.acquire(lambda: served.append(2))
        assert served == [1, 2]
        assert server.busy == 2
        server.release()
        assert server.busy == 1

    def test_waiters_are_served_fifo(self):
        server = FifoServer("cpu", 1)
        served = []
        server.acquire(lambda: served.append("first"))
        server.acquire(lambda: served.append("second"))
        server.acquire(lambda: served.append("third"))
        assert served == ["first"]
        assert server.waits == 2
        server.release()
        assert served == ["first", "second"]
        server.release()
        assert served == ["first", "second", "third"]
        server.release()
        assert server.free == 1


class TestResourceModel:
    def test_infinite_resources_take_step_time(self):
        engine = EventEngine()
        params = SimulationParameters(total_completions=1)
        model = ResourceModel(engine, params, RandomSource(1))
        done = []
        model.perform_step(lambda: done.append(engine.now))
        engine.run()
        assert done == [pytest.approx(params.step_time)]
        assert model.utilisation_summary() == {"resources": "infinite"}

    def test_finite_resources_take_cpu_plus_io_time(self):
        engine = EventEngine()
        params = SimulationParameters(total_completions=1, resource_units=1)
        model = ResourceModel(engine, params, RandomSource(1))
        done = []
        model.perform_step(lambda: done.append(engine.now))
        engine.run()
        assert done == [pytest.approx(params.cpu_time + params.io_time)]
        summary = model.utilisation_summary()
        assert summary["cpu_served"] == 1 and summary["disk_served"] == 1

    def test_cpu_contention_serialises_steps(self):
        engine = EventEngine()
        params = SimulationParameters(total_completions=1, resource_units=1)
        model = ResourceModel(engine, params, RandomSource(1))
        done = []
        model.perform_step(lambda: done.append(engine.now))
        model.perform_step(lambda: done.append(engine.now))
        engine.run()
        # The second step cannot start its CPU service before the first
        # releases the only CPU.
        assert done[1] >= params.cpu_time + params.io_time
        assert done[1] >= done[0]

    def test_resource_unit_counts(self):
        params = SimulationParameters(total_completions=1, resource_units=3)
        assert params.num_cpus == 3
        assert params.num_disks == 6
