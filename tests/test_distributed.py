"""Unit tests for the multi-site execution layer (repro.distributed).

Covers the placement policies, the router's read-one/write-all-available
routing, the available-copies failure rules (site failure aborts its writers;
recovered replicated copies are unreadable until a committed write), the
cross-site deadlock guard, and statistics aggregation across crashes.
"""

import pytest

from repro.adts.page import PageType
from repro.core.policy import ConflictPolicy
from repro.core.requests import AbortReason
from repro.core.transaction import TransactionStatus
from repro.distributed import (
    HashShardedPlacement,
    ReplicatedPlacement,
    SingleSitePlacement,
    SiteStatus,
    TransactionRouter,
    make_placement,
)
from repro.core.errors import ReproError, SimulationError, TransactionStateError


def make_router(sites=2, replication="copies", policy=ConflictPolicy.RECOVERABILITY,
                objects=("x", "y")):
    router = TransactionRouter(
        site_count=sites, replication=replication, policy=policy, retain_terminated=True
    )
    page = PageType()
    for name in objects:
        router.register_object(name, page, compatibility=page.compatibility())
    return router


class TestPlacement:
    def test_single_site_places_everything_on_site_zero(self):
        placement = SingleSitePlacement(4)
        assert placement.sites_for("anything") == (0,)
        assert not placement.is_replicated("anything")

    def test_hash_sharding_is_stable_and_in_range(self):
        placement = HashShardedPlacement(4)
        names = [f"obj{i:05d}" for i in range(200)]
        homes = {name: placement.sites_for(name) for name in names}
        assert all(len(sites) == 1 and 0 <= sites[0] < 4 for sites in homes.values())
        # Deterministic: a second policy instance agrees exactly.
        again = HashShardedPlacement(4)
        assert all(again.sites_for(name) == homes[name] for name in names)
        # All four shards are actually used.
        assert {sites[0] for sites in homes.values()} == {0, 1, 2, 3}

    def test_replicated_placement_covers_every_site(self):
        placement = ReplicatedPlacement(3)
        assert placement.sites_for("x") == (0, 1, 2)
        assert placement.is_replicated("x")

    def test_make_placement_rejects_unknown_kind(self):
        with pytest.raises(SimulationError):
            make_placement("nonsense", 2)


class TestRouting:
    def test_write_fans_out_to_every_replica(self):
        router = make_router(sites=3)
        t = router.begin()
        request = router.perform(t.gtid, "x", "write", 1)
        assert request.executed
        assert sorted(request.branch_handles) == [0, 1, 2]
        assert all(site.scheduler.object_state("x") == 1 for site in router.sites)

    def test_read_goes_to_exactly_one_replica(self):
        router = make_router(sites=3)
        t = router.begin()
        request = router.perform(t.gtid, "x", "read")
        assert request.executed
        assert len(request.branch_handles) == 1

    def test_global_commit_is_durable_everywhere(self):
        router = make_router(sites=2)
        t = router.begin()
        router.perform(t.gtid, "x", "write", 7)
        assert router.commit(t.gtid) is TransactionStatus.COMMITTED
        for site in router.sites:
            assert site.scheduler.committed_state("x") == 7

    def test_blocked_replica_blocks_the_global_request(self):
        router = make_router(sites=2)
        writer = router.begin()
        router.perform(writer.gtid, "x", "write", 1)
        reader = router.begin()
        request = router.perform(reader.gtid, "x", "read")
        assert request.blocked and not request.executed
        router.commit(writer.gtid)
        assert request.executed
        assert request.value == 1

    def test_protocol_abort_at_one_branch_aborts_globally(self):
        # Two transactions write x in opposite order on each other's heels;
        # under 2PL the second writer of each object waits, and the cycle
        # victim's abort must reach every site.
        router = make_router(sites=2, policy=ConflictPolicy.TWO_PHASE_LOCKING)
        t1, t2 = router.begin(), router.begin()
        router.perform(t1.gtid, "x", "write", 1)
        router.perform(t2.gtid, "y", "write", 2)
        assert router.perform(t1.gtid, "y", "write", 3).blocked
        request = router.perform(t2.gtid, "x", "write", 4)
        assert request.aborted
        assert t2.status is TransactionStatus.ABORTED
        # t1's blocked write of y is granted once t2's locks are gone.
        assert router.commit(t1.gtid) is TransactionStatus.COMMITTED

    def test_submit_while_blocked_is_rejected_before_any_fanout(self):
        # The centralized scheduler rejects an operation while the previous
        # one is queued; the router must refuse *before* touching any branch,
        # or replicas would diverge.
        router = make_router(sites=2)
        writer = router.begin()
        router.perform(writer.gtid, "x", "write", 1)
        blocked = router.begin()
        assert router.perform(blocked.gtid, "x", "read").blocked
        with pytest.raises(TransactionStateError):
            router.perform(blocked.gtid, "y", "write", 9)
        # Nothing was mutated: y is untouched at both replicas and the
        # blocked read is still the current request (granted on commit).
        for site in router.sites:
            assert site.scheduler.object_state("y") == 0
        router.commit(writer.gtid)
        assert blocked.current_request.executed

    def test_unknown_object_raises(self):
        router = make_router()
        t = router.begin()
        from repro.core.errors import UnknownObjectError

        with pytest.raises(UnknownObjectError):
            router.perform(t.gtid, "nope", "read")


class TestSiteFailure:
    def test_failure_aborts_transactions_that_wrote_to_the_site(self):
        router = make_router(sites=2)
        writer = router.begin()
        reader = router.begin()
        router.perform(writer.gtid, "x", "write", 1)
        router.perform(reader.gtid, "y", "read")
        router.fail_site(1)
        assert writer.status is TransactionStatus.ABORTED
        assert reader.status is TransactionStatus.ACTIVE
        assert router.router_stats.site_failure_aborts == 1
        # The reader finishes unharmed on the surviving site.
        assert router.commit(reader.gtid) is TransactionStatus.COMMITTED

    def test_failure_aborts_transactions_blocked_at_the_site(self):
        # Object "obj00001" hashes reads deterministically; force a blocked
        # read at site 1 by writing there first from another transaction.
        router = make_router(sites=2)
        writer = router.begin()
        router.perform(writer.gtid, "x", "write", 1)
        reader = router.begin()
        request = router.perform(reader.gtid, "x", "read")
        assert request.blocked
        blocked_site = next(iter(request.branch_handles))
        router.fail_site(blocked_site)
        assert reader.status is TransactionStatus.ABORTED

    def test_committed_transactions_survive_failure(self):
        router = make_router(sites=2)
        t = router.begin()
        router.perform(t.gtid, "x", "write", 3)
        assert router.commit(t.gtid) is TransactionStatus.COMMITTED
        router.fail_site(1)
        assert t.status is TransactionStatus.COMMITTED
        assert router.sites[0].scheduler.committed_state("x") == 3

    def test_operations_fail_when_no_copy_is_available(self):
        router = make_router(sites=1, replication="single")
        router.fail_site(0)
        t = router.begin()
        request = router.perform(t.gtid, "x", "write", 1)
        assert request.aborted
        assert request.abort_reason is AbortReason.SITE_UNAVAILABLE
        assert t.status is TransactionStatus.ABORTED

    def test_double_failure_is_rejected(self):
        router = make_router(sites=2)
        router.fail_site(1)
        with pytest.raises(ReproError):
            router.sites[1].fail()

    def test_stats_survive_the_crash(self):
        router = make_router(sites=2)
        t = router.begin()
        router.perform(t.gtid, "x", "write", 1)
        router.commit(t.gtid)
        executed_before = router.stats.operations_executed
        assert executed_before >= 2  # one write per replica
        router.fail_site(1)
        assert router.stats.operations_executed == executed_before


class TestRecovery:
    def test_recovered_replicated_copy_is_unreadable_until_committed_write(self):
        router = make_router(sites=2)
        seed = router.begin()
        router.perform(seed.gtid, "x", "write", 1)
        router.commit(seed.gtid)
        router.fail_site(1)
        router.recover_site(1)
        site = router.sites[1]
        assert site.status is SiteStatus.UP
        assert not site.readable("x")
        assert site.writable("x")
        # An uncommitted write does not make the copy readable yet.
        writer = router.begin()
        router.perform(writer.gtid, "x", "write", 9)
        assert not site.readable("x")
        # The committed write does.
        assert router.commit(writer.gtid) is TransactionStatus.COMMITTED
        assert site.readable("x")
        assert site.scheduler.committed_state("x") == 9

    def test_committed_state_is_durable_across_a_crash(self):
        # Committed data lives on "disk": a crash loses only volatile
        # scheduler state, so a recovered single-copy object serves the
        # committed value, not its initial state.
        router = TransactionRouter(site_count=2, replication="hash", retain_terminated=True)
        page = PageType()
        names = [f"obj{i}" for i in range(8)]
        for name in names:
            router.register_object(name, page, compatibility=page.compatibility())
        victim = next(name for name in names if router.placement.sites_for(name) == (1,))
        writer = router.begin()
        router.perform(writer.gtid, victim, "write", 42)
        router.commit(writer.gtid)
        router.fail_site(1)
        router.recover_site(1)
        reader = router.begin()
        request = router.perform(reader.gtid, victim, "read")
        assert request.executed
        assert request.value == 42

    def test_only_writes_that_landed_at_the_site_make_copies_readable(self):
        # x is written while site 1 is down (the write lands only on site 0);
        # committing it must NOT make site 1's stale x copy readable.
        router = make_router(sites=2)
        router.fail_site(1)
        writer = router.begin()
        router.perform(writer.gtid, "x", "write", 42)
        router.recover_site(1)
        router.perform(writer.gtid, "y", "write", 7)  # lands on both sites
        assert router.commit(writer.gtid) is TransactionStatus.COMMITTED
        site = router.sites[1]
        assert site.readable("y")
        assert not site.readable("x")
        # Reads of x keep falling over to site 0's fresh copy.
        reader = router.begin()
        request = router.perform(reader.gtid, "x", "read")
        assert list(request.branch_handles) == [0]
        assert request.value == 42

    def test_single_copy_objects_are_readable_immediately_after_recovery(self):
        router = TransactionRouter(site_count=2, replication="hash", retain_terminated=True)
        page = PageType()
        names = [f"obj{i}" for i in range(8)]
        for name in names:
            router.register_object(name, page, compatibility=page.compatibility())
        victim = next(
            name for name in names if router.placement.sites_for(name) == (1,)
        )
        router.fail_site(1)
        router.recover_site(1)
        assert router.sites[1].readable(victim)

    def test_reads_fall_over_to_a_readable_replica(self):
        router = make_router(sites=2)
        seed = router.begin()
        router.perform(seed.gtid, "x", "write", 5)
        router.commit(seed.gtid)
        router.fail_site(1)
        router.recover_site(1)
        reader = router.begin()
        request = router.perform(reader.gtid, "x", "read")
        assert request.executed
        # Only site 0 can serve the read: site 1's copy is still unreadable.
        assert list(request.branch_handles) == [0]
        assert request.value == 5


class TestCrossSiteDeadlock:
    def test_cross_site_wait_cycle_is_detected_and_broken(self):
        # Shard x and y onto different sites, then interleave two writers so
        # each waits for the other at a different site: no single site can
        # see the cycle, the router's union check must.
        router = TransactionRouter(
            site_count=2,
            replication="hash",
            policy=ConflictPolicy.TWO_PHASE_LOCKING,
            retain_terminated=True,
        )
        page = PageType()
        names = [f"obj{i}" for i in range(16)]
        for name in names:
            router.register_object(name, page, compatibility=page.compatibility())
        on_zero = next(n for n in names if router.placement.sites_for(n) == (0,))
        on_one = next(n for n in names if router.placement.sites_for(n) == (1,))
        t1, t2 = router.begin(), router.begin()
        assert router.perform(t1.gtid, on_zero, "write", 1).executed
        assert router.perform(t2.gtid, on_one, "write", 2).executed
        assert router.perform(t1.gtid, on_one, "write", 3).blocked
        request = router.perform(t2.gtid, on_zero, "write", 4)
        assert request.aborted
        assert t2.status is TransactionStatus.ABORTED
        assert router.router_stats.cross_site_deadlock_aborts == 1
        # The survivor drains and commits.
        assert router.commit(t1.gtid) is TransactionStatus.COMMITTED


class TestGlobalCommitProtocol:
    def test_pseudo_commit_drains_across_sites(self):
        # Two pushes on the same stack-like page: under recoverability the
        # second writer pseudo-commits behind the first at every replica and
        # durably commits only when the first terminates everywhere.
        router = make_router(sites=2)
        t1, t2 = router.begin(), router.begin()
        router.perform(t1.gtid, "x", "write", 1)
        router.perform(t2.gtid, "y", "write", 2)
        # t2 also writes x after t1: recoverable (write-write), so it
        # executes with a commit dependency on t1 at both sites.
        request = router.perform(t2.gtid, "x", "write", 3)
        assert request.executed
        assert router.commit(t2.gtid) is TransactionStatus.PSEUDO_COMMITTED
        assert t2.status is TransactionStatus.PSEUDO_COMMITTED
        assert router.commit(t1.gtid) is TransactionStatus.COMMITTED
        assert t2.status is TransactionStatus.COMMITTED
        assert router.router_stats.commits == 2

    def test_commit_while_blocked_is_rejected_before_any_branch_commits(self):
        # Committing with a queued request must fail atomically: no branch
        # may durably commit before the rejection.
        router = make_router(sites=2, policy=ConflictPolicy.TWO_PHASE_LOCKING)
        holder = router.begin()
        router.perform(holder.gtid, "x", "write", 1)
        waiter = router.begin()
        router.perform(waiter.gtid, "y", "write", 5)
        assert router.perform(waiter.gtid, "x", "write", 6).blocked
        with pytest.raises(TransactionStateError):
            router.commit(waiter.gtid)
        assert waiter.status is TransactionStatus.ACTIVE
        # y's write is still uncommitted everywhere: an abort undoes it.
        router.abort(waiter.gtid)
        for site in router.sites:
            assert site.scheduler.committed_state("y") == 0

    def test_commit_requires_active_transaction(self):
        router = make_router()
        t = router.begin()
        router.perform(t.gtid, "x", "write", 1)
        router.commit(t.gtid)
        with pytest.raises(TransactionStateError):
            router.commit(t.gtid)

    def test_user_abort_reaches_every_branch(self):
        router = make_router(sites=2)
        t = router.begin()
        router.perform(t.gtid, "x", "write", 1)
        router.abort(t.gtid)
        assert t.status is TransactionStatus.ABORTED
        # The write was rolled back at every replica (pages start at 0).
        for site in router.sites:
            assert site.scheduler.object_state("x") == 0
