"""Tests for the command-line interface (``python -m repro``)."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestListCommand:
    def test_lists_every_figure_and_table(self):
        code, text = run_cli("list")
        assert code == 0
        for figure_number in range(4, 19):
            assert f"figure-{figure_number}" in text
        for type_name in ("page", "stack", "set", "table"):
            assert f"tables ({type_name})" in text


class TestTablesCommand:
    def test_single_type(self):
        code, text = run_cli("tables", "--type", "stack")
        assert code == 0
        assert "Table III" in text and "Table IV" in text
        assert "Table I " not in text

    def test_all_types_include_parameters(self):
        code, text = run_cli("tables")
        assert code == 0
        assert "Table I" in text and "Table VII" in text
        assert "database_size" in text


class TestFigureCommand:
    def test_runs_a_smoke_scale_figure_and_saves_report(self, tmp_path):
        code, text = run_cli("figure", "figure-4", "--scale", "smoke", "--output", str(tmp_path))
        assert code == 0
        assert "figure-4" in text
        assert "recoverability" in text
        saved = (tmp_path / "figure-4.txt").read_text()
        assert "summary (throughput)" in saved

    def test_unknown_figure_is_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            run_cli("figure", "figure-99")


class TestFiguresCommand:
    def test_list_shows_every_registry_entry(self):
        from repro.analysis import EXPERIMENT_REGISTRY

        code, text = run_cli("figures", "--list")
        assert code == 0
        for experiment_id in EXPERIMENT_REGISTRY.ids():
            assert experiment_id in text
        assert "[distributed]" in text and "[tables]" in text

    def test_only_with_workers_and_out(self, tmp_path):
        code, text = run_cli(
            "figures", "--only", "ablation-pseudo-commit-slot",
            "--workers", "2", "--scale", "smoke", "--out", str(tmp_path),
        )
        assert code == 0
        assert "holds-slot" in text
        saved = (tmp_path / "ablation-pseudo-commit-slot.txt").read_text()
        assert "summary (throughput)" in saved

    def test_parallel_report_matches_serial(self, tmp_path):
        argv = ("figures", "--only", "figure-4", "--scale", "smoke")
        _, serial = run_cli(*argv)
        _, parallel = run_cli(*argv, "--workers", "2")
        assert parallel == serial

    def test_tables_entry_renders_table_report(self):
        code, text = run_cli("figures", "--only", "tables")
        assert code == 0
        assert "Table I" in text and "database_size" in text

    def test_unknown_id_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("figures", "--only", "figure-99")
        assert excinfo.value.code == 2
        assert "figure-99" in capsys.readouterr().err

    def test_bad_worker_count_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("figures", "--only", "figure-4", "--workers", "0")
        assert excinfo.value.code == 2
        assert "--workers" in capsys.readouterr().err


class TestProfileCommand:
    def test_reports_deterministic_call_counts(self):
        argv = (
            "profile",
            "--mpl", "6",
            "--completions", "40",
            "--database-size", "40",
            "--top", "10",
        )
        code, text = run_cli(*argv)
        assert code == 0
        assert "calls/event" in text
        assert "events_processed" in text
        # Call counts derive only from (parameters, seed): byte-identical.
        _, again = run_cli(*argv)
        assert again == text

    def test_raw_flag_appends_pstats(self):
        code, text = run_cli(
            "profile", "--mpl", "4", "--completions", "20",
            "--database-size", "40", "--raw",
        )
        assert code == 0
        assert "cumulative" in text

    def test_bad_top_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("profile", "--top", "0")
        assert excinfo.value.code == 2
        assert "--top" in capsys.readouterr().err


class TestSimulateCommand:
    def test_prints_all_metrics(self):
        code, text = run_cli(
            "simulate",
            "--database-size", "50",
            "--mpl", "8",
            "--completions", "60",
            "--policy", "commutativity",
        )
        assert code == 0
        for metric in ("throughput", "response_time", "blocking_ratio", "restart_ratio"):
            assert metric in text

    def test_adt_workload_and_unfair_flag(self):
        code, text = run_cli(
            "simulate",
            "--workload", "adt",
            "--database-size", "40",
            "--mpl", "6",
            "--completions", "40",
            "--pc", "2",
            "--pr", "8",
            "--unfair",
        )
        assert code == 0
        assert "throughput" in text

    def test_finite_resources(self):
        code, text = run_cli(
            "simulate",
            "--database-size", "50",
            "--mpl", "6",
            "--completions", "40",
            "--resource-units", "1",
        )
        assert code == 0
        assert "throughput" in text

    def test_json_output_is_machine_readable_and_deterministic(self):
        import json

        argv = (
            "simulate",
            "--database-size", "50",
            "--mpl", "8",
            "--completions", "60",
            "--seed", "4",
            "--json",
        )
        code, text = run_cli(*argv)
        assert code == 0
        payload = json.loads(text)
        assert payload["counters"]["completions"] == 60
        assert payload["params"]["seed"] == 4
        assert payload["sites"]["count"] == 1
        assert set(payload) == {
            "params", "workload", "metrics", "counters", "resources", "sites"
        }
        # Deterministic: the same invocation yields byte-identical JSON.
        _, again = run_cli(*argv)
        assert again == text

    def test_multi_site_run_with_scripted_failure(self):
        import json

        code, text = run_cli(
            "simulate",
            "--database-size", "50",
            "--mpl", "8",
            "--completions", "60",
            "--sites", "2",
            "--replication", "copies",
            "--fail-at", "0.5:1",
            "--recover-at", "1.5:1",
            "--json",
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["sites"]["count"] == 2
        assert payload["sites"]["replication"] == "copies"
        assert payload["sites"]["failures"] == 1
        assert payload["sites"]["recoveries"] == 1
        assert payload["counters"]["completions"] == 60

    def test_json_echoes_the_failure_schedule(self):
        """A JSON run is self-describing: the schedule that shaped its
        counters is echoed both in the params block and the sites block."""
        import json

        code, text = run_cli(
            "simulate",
            "--database-size", "50",
            "--mpl", "8",
            "--completions", "60",
            "--sites", "2",
            "--fail-at", "0.5:1",
            "--recover-at", "1.5:1",
            "--json",
        )
        assert code == 0
        payload = json.loads(text)
        expected = [[0.5, "fail", 1], [1.5, "recover", 1]]
        assert payload["sites"]["failure_schedule"] == expected
        assert payload["params"]["failure_schedule"] == expected

    def test_replication_protocol_flags(self):
        import json

        code, text = run_cli(
            "simulate",
            "--database-size", "50",
            "--mpl", "8",
            "--completions", "60",
            "--sites", "2",
            "--replication-protocol", "quorum",
            "--quorum-r", "1",
            "--quorum-w", "2",
            "--json",
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["sites"]["replication_protocol"] == "quorum"
        assert payload["params"]["replication_protocol"] == "quorum"
        assert payload["params"]["quorum_read"] == 1
        assert payload["counters"]["replication_messages"] > 0

    def test_broken_quorum_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("simulate", "--sites", "2",
                    "--replication-protocol", "quorum",
                    "--quorum-r", "1", "--quorum-w", "1")
        assert excinfo.value.code == 2
        assert "quorum" in capsys.readouterr().err

    def test_site_units_run(self):
        import json

        code, text = run_cli(
            "simulate",
            "--database-size", "50",
            "--mpl", "8",
            "--completions", "40",
            "--sites", "2",
            "--resource-placement", "per_site",
            "--site-units", "2,1",
            "--json",
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["params"]["site_units"] == [2, 1]
        assert payload["counters"]["resource_site0_cpu_served"] > 0

    @pytest.mark.parametrize("units", ["2", "2,1,1", "2,x"])
    def test_bad_site_units_exit_with_argparse_error(self, capsys, units):
        """Length mismatches and junk are a usage error, never a traceback."""
        with pytest.raises(SystemExit) as excinfo:
            run_cli("simulate", "--sites", "2",
                    "--resource-placement", "per_site",
                    "--site-units", units)
        assert excinfo.value.code == 2
        captured = capsys.readouterr()
        assert "--site-units" in captured.err
        assert "Traceback" not in captured.err

    def test_sites_default_replication_is_copies(self):
        import json

        code, text = run_cli(
            "simulate",
            "--database-size", "50",
            "--mpl", "6",
            "--completions", "40",
            "--sites", "2",
            "--json",
        )
        assert code == 0
        assert json.loads(text)["sites"]["replication"] == "copies"

    def test_malformed_fail_at_is_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("simulate", "--sites", "2", "--fail-at", "oops")

    @pytest.mark.parametrize("flag", ["--fail-at", "--recover-at"])
    @pytest.mark.parametrize("entry", [
        "oops",          # no TIME:SITE separator
        "1.5",           # missing the site
        "abc:1",         # unparsable time
        "1.5:def",       # unparsable site
        "1.5:1.5",       # fractional site
        "-2:1",          # negative time
        "1.5:2",         # site outside [0, sites)
        "1.5:-1",        # negative site
    ])
    def test_bad_site_events_exit_with_argparse_error(self, capsys, flag, entry):
        """Malformed TIME:SITE flags are a usage error, never a traceback."""
        with pytest.raises(SystemExit) as excinfo:
            run_cli("simulate", "--sites", "2", flag, entry)
        assert excinfo.value.code == 2  # argparse usage-error exit code
        captured = capsys.readouterr()
        assert flag in captured.err
        assert "Traceback" not in captured.err

    def test_bad_parameter_combinations_exit_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("simulate", "--msg-time", "-0.5")
        assert excinfo.value.code == 2
        assert "msg_time" in capsys.readouterr().err

    def test_per_site_resources_and_msg_time(self):
        import json

        code, text = run_cli(
            "simulate",
            "--database-size", "50",
            "--mpl", "8",
            "--completions", "60",
            "--sites", "2",
            "--resource-units", "1",
            "--resource-placement", "per_site",
            "--msg-time", "0.001",
            "--json",
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["params"]["resource_placement"] == "per_site"
        assert payload["params"]["msg_time"] == 0.001
        assert payload["resources"]["site0_cpu_served"] > 0
        assert payload["resources"]["site1_cpu_served"] > 0
        assert payload["resources"]["messages_sent"] > 0
        assert payload["counters"]["resource_cpu_served"] > 0

    def test_json_surfaces_the_utilisation_summary(self):
        import json

        code, text = run_cli(
            "simulate",
            "--database-size", "50",
            "--mpl", "6",
            "--completions", "40",
            "--resource-units", "1",
            "--json",
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["resources"]["cpu_served"] > 0
        assert payload["resources"]["disk_served"] > 0
        assert payload["counters"]["resource_cpu_served"] == payload["resources"]["cpu_served"]

    def test_json_reports_infinite_resources(self):
        import json

        code, text = run_cli(
            "simulate",
            "--database-size", "50",
            "--mpl", "6",
            "--completions", "40",
            "--json",
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["resources"] == {"resources": "infinite"}
        assert "resource_cpu_served" not in payload["counters"]
