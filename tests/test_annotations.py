"""Annotation-completeness guard for the strict-typed packages.

CI runs mypy with ``disallow_untyped_defs``/``disallow_incomplete_defs``
over ``repro.sim``, ``repro.distributed`` and ``repro.analysis`` (see
``[tool.mypy]`` in pyproject.toml).  mypy is not part of the runtime
environment, so this test enforces the same surface with the stdlib ``ast``
module: every function in the strict packages must annotate its return type
and all of its parameters.  A regression here is exactly what would turn
the CI mypy job red.
"""

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
STRICT_PACKAGES = ("sim", "distributed", "analysis")


def _missing_annotations(tree):
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        missing = []
        # ``__init__`` implicitly returns None; mypy accepts it unannotated
        # as long as some parameter is annotated.
        if node.returns is None and node.name != "__init__":
            missing.append("return")
        arguments = node.args
        named = arguments.posonlyargs + arguments.args + arguments.kwonlyargs
        for argument in named:
            if argument.arg in ("self", "cls"):
                continue
            if argument.annotation is None:
                missing.append(argument.arg)
        if arguments.vararg is not None and arguments.vararg.annotation is None:
            missing.append("*" + arguments.vararg.arg)
        if arguments.kwarg is not None and arguments.kwarg.annotation is None:
            missing.append("**" + arguments.kwarg.arg)
        if missing:
            yield node.lineno, node.name, missing


@pytest.mark.parametrize("package", STRICT_PACKAGES)
def test_strict_packages_fully_annotated(package):
    problems = []
    for path in sorted((SRC / package).rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, name, missing in _missing_annotations(tree):
            problems.append(f"{path}:{lineno} {name}() missing: {', '.join(missing)}")
    assert problems == [], "\n".join(problems)
