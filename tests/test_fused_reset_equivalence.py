"""The fast paths must be invisible: fused submit and reset() reuse.

Two shortcuts replaced work on the hot path this round:

* the backends compile a *fused submit* (``Scheduler.submit`` is shadowed
  by a no-conflict fast path that falls back to the general path on any
  conflict), and
* the experiment harness *reuses* a constructed :class:`Simulation` across
  sweep points through :meth:`Simulation.reset` instead of rebuilding it.

Both are pure optimizations, so each must be byte-identical to the path it
replaced on the pinned CRC32-derived random streams — for every backend
(commutativity, recoverability, two-phase locking), centralized and
multi-site alike.  Any drift here means a fast path changed a scheduling
decision.
"""

import pytest

from repro.core.errors import SimulationError
from repro.core.policy import ConflictPolicy
from repro.core.scheduler import Scheduler
from repro.sim.params import SimulationParameters
from repro.sim.simulator import Simulation, run_simulation

POLICIES = {
    "commutativity": ConflictPolicy.COMMUTATIVITY,
    "recoverability": ConflictPolicy.RECOVERABILITY,
    "two-phase-locking": ConflictPolicy.TWO_PHASE_LOCKING,
}

CASES = [
    (policy_name, sites) for policy_name in sorted(POLICIES) for sites in (1, 3)
]


def point_params(policy: ConflictPolicy, sites: int) -> SimulationParameters:
    overrides = dict(
        mpl_level=12, total_completions=120, database_size=100, seed=9,
        policy=policy,
    )
    if sites > 1:
        overrides.update(site_count=sites, replication="copies")
    return SimulationParameters(**overrides)


def signature(metrics):
    """Every deterministic observable of a run, rounding only float noise."""
    return dict(
        metrics.counters(),
        simulated_time=round(metrics.simulated_time, 12),
        response_time_total=round(metrics.response_time_total, 12),
    )


def force_unfused(monkeypatch):
    """Make every Scheduler built from now on use the general submit path."""
    original = Scheduler.__init__

    def unfused_init(self, *args, **kwargs):
        kwargs["fuse_submit"] = False
        original(self, *args, **kwargs)

    monkeypatch.setattr(Scheduler, "__init__", unfused_init)


class TestFusedSubmitEquivalence:
    @pytest.mark.parametrize("policy_name,sites", CASES)
    def test_fused_matches_general_path(self, policy_name, sites, monkeypatch):
        params = point_params(POLICIES[policy_name], sites)
        fused = run_simulation(params, workload_kind="readwrite")
        force_unfused(monkeypatch)
        general = run_simulation(params, workload_kind="readwrite")
        assert signature(fused) == signature(general)

    def test_fused_matches_general_path_on_adt_workload(self, monkeypatch):
        # ADT objects route through the compiled compatibility tables'
        # unknown-operation fallbacks too; the fused path must agree there
        # as well.
        params = SimulationParameters(
            mpl_level=10, total_completions=80, database_size=80, seed=5,
            policy=ConflictPolicy.RECOVERABILITY,
        )
        fused = run_simulation(params, workload_kind="adt")
        force_unfused(monkeypatch)
        general = run_simulation(params, workload_kind="adt")
        assert signature(fused) == signature(general)


class TestResetReuseEquivalence:
    @pytest.mark.parametrize("policy_name,sites", CASES)
    def test_reset_reuse_matches_rebuild(self, policy_name, sites):
        # One constructed simulation swept across two parameter points and
        # back must reproduce three freshly built runs bit for bit.
        params = point_params(POLICIES[policy_name], sites)
        other = params.replace(mpl_level=8, total_completions=80)
        fresh_first = run_simulation(params, workload_kind="readwrite")
        fresh_other = run_simulation(other, workload_kind="readwrite")

        simulation = Simulation(params, workload_kind="readwrite")
        first = simulation.run()
        simulation.reset(other)
        second = simulation.run()
        simulation.reset(params)
        third = simulation.run()

        assert signature(first) == signature(fresh_first)
        assert signature(second) == signature(fresh_other)
        assert signature(third) == signature(fresh_first)

    def test_reset_after_crash_and_recovery_rebuilds_sites(self):
        # A site that failed and recovered registered its objects from crash
        # snapshots; reset() must rebuild it from the original
        # registrations, not rewind the snapshot state.
        params = SimulationParameters(
            mpl_level=10, total_completions=80, database_size=80, seed=11,
            site_count=3, replication="copies",
            failure_schedule=((1.0, "fail", 1), (2.5, "recover", 1)),
        )
        fresh = run_simulation(params, workload_kind="readwrite")
        simulation = Simulation(params, workload_kind="readwrite")
        first = simulation.run()
        simulation.reset(params)
        second = simulation.run()
        assert signature(first) == signature(fresh)
        assert signature(second) == signature(fresh)

    def test_reset_reuse_under_quorum_and_two_phase_commit(self):
        # The protocol objects keep state across a run (awaiting commits,
        # version tables); their reset() hooks must clear all of it.
        params = SimulationParameters(
            mpl_level=10, total_completions=80, database_size=80, seed=3,
            site_count=3, replication="copies", replication_protocol="quorum",
            commit_protocol="two-phase",
        )
        fresh = run_simulation(params, workload_kind="adt")
        simulation = Simulation(params, workload_kind="adt")
        first = simulation.run()
        simulation.reset(params)
        second = simulation.run()
        assert signature(first) == signature(fresh)
        assert signature(second) == signature(fresh)

    def test_reset_rejects_structural_parameter_changes(self):
        params = point_params(ConflictPolicy.RECOVERABILITY, 1)
        simulation = Simulation(params, workload_kind="readwrite")
        simulation.run()
        with pytest.raises(SimulationError):
            simulation.reset(params.replace(seed=10))
        with pytest.raises(SimulationError):
            simulation.reset(params.replace(database_size=50))
