"""sites=1 must reproduce the pre-multi-site system bit for bit.

The multi-site refactor routed every simulation through the
:class:`~repro.distributed.router.TransactionRouter`.  With ``site_count=1``
the router must be a pure pass-through: the constants below are the raw
deterministic counters of the *pre-refactor* single-scheduler simulator,
captured on the pinned seeds before the router existed (the random streams
have been process-stable — CRC32-derived — since PR 1, so these values are
reproducible on any interpreter).  Any drift here means the router changed
the centralized system's decision stream.
"""

import pytest

from repro.core.policy import ConflictPolicy
from repro.sim.params import SimulationParameters
from repro.sim.simulator import Simulation, run_simulation

#: Raw counters of the pre-refactor simulator on pinned (params, seed) points.
PINNED = {
    "rw-recov-seed1": (
        dict(mpl_level=20, total_completions=200, database_size=200, seed=1,
             policy=ConflictPolicy.RECOVERABILITY),
        "readwrite",
        dict(completions=200, commits=148, pseudo_commits=52, blocks=122,
             restarts=22, cycle_checks=319, aborts=23, abort_length_total=136,
             commit_dependency_edges=188, events_processed=2168,
             simulated_time=6.2805056012, response_time_total=493.8753903924),
    ),
    "rw-recov-seed7": (
        dict(mpl_level=20, total_completions=200, database_size=200, seed=7,
             policy=ConflictPolicy.RECOVERABILITY),
        "readwrite",
        dict(completions=200, commits=135, pseudo_commits=65, blocks=148,
             restarts=25, cycle_checks=385, aborts=25, abort_length_total=177,
             commit_dependency_edges=235, events_processed=2257,
             simulated_time=7.199834262, response_time_total=572.7787869174),
    ),
    "rw-2pl-seed3": (
        dict(mpl_level=20, total_completions=200, database_size=200, seed=3,
             policy=ConflictPolicy.TWO_PHASE_LOCKING),
        "readwrite",
        dict(completions=200, commits=200, pseudo_commits=0, blocks=289,
             restarts=30, cycle_checks=319, aborts=30, abort_length_total=190,
             commit_dependency_edges=0, events_processed=2225,
             simulated_time=14.2961305294, response_time_total=1291.6200545279),
    ),
    "adt-recov-seed5": (
        dict(mpl_level=20, total_completions=150, database_size=150, seed=5,
             policy=ConflictPolicy.RECOVERABILITY),
        "adt",
        dict(completions=150, commits=117, pseudo_commits=33, blocks=321,
             restarts=80, cycle_checks=543, aborts=80, abort_length_total=472,
             commit_dependency_edges=136, events_processed=2071,
             simulated_time=12.1646762018, response_time_total=739.3247153197),
    ),
    "rw-comm-finite-seed2": (
        dict(mpl_level=20, total_completions=150, database_size=200, seed=2,
             policy=ConflictPolicy.COMMUTATIVITY, resource_units=2),
        "readwrite",
        dict(completions=150, commits=150, pseudo_commits=0, blocks=236,
             restarts=21, cycle_checks=257, aborts=21, abort_length_total=132,
             commit_dependency_edges=0, events_processed=3148,
             resource_cpu_served=1402, resource_cpu_waits=545,
             resource_disk_served=1396, resource_disk_waits=916,
             simulated_time=17.8856524443, response_time_total=1320.1088027193),
    ),
}


@pytest.mark.parametrize("case", sorted(PINNED))
def test_single_site_reproduces_pre_refactor_counters(case):
    overrides, workload, expected = PINNED[case]
    metrics = run_simulation(SimulationParameters(**overrides), workload_kind=workload)
    observed = dict(
        metrics.counters(),
        simulated_time=round(metrics.simulated_time, 10),
        response_time_total=round(metrics.response_time_total, 10),
    )
    assert observed == expected


def test_explicit_sites_one_matches_default():
    """site_count=1 + replication='single' is the default configuration."""
    base = dict(mpl_level=15, total_completions=100, database_size=100, seed=11)
    default = run_simulation(SimulationParameters(**base), "readwrite")
    explicit = run_simulation(
        SimulationParameters(site_count=1, replication="single", **base), "readwrite"
    )
    assert default.as_dict() == explicit.as_dict()
    assert default.events_processed == explicit.events_processed


def test_multi_site_runs_are_deterministic():
    """Same (params, seed) twice -> identical multi-site metrics."""
    params = SimulationParameters(
        mpl_level=15, total_completions=100, database_size=100, seed=11,
        site_count=2, replication="copies",
        failure_schedule=((1.0, "fail", 1), (2.5, "recover", 1)),
    )
    first = run_simulation(params, "readwrite")
    second = run_simulation(params, "readwrite")
    assert first.as_dict() == second.as_dict()
    assert first.events_processed == second.events_processed


def test_failure_schedule_fires_and_system_completes():
    params = SimulationParameters(
        mpl_level=15, total_completions=100, database_size=100, seed=11,
        site_count=2, replication="copies",
        failure_schedule=((1.0, "fail", 1), (2.5, "recover", 1)),
    )
    simulation = Simulation(params, "readwrite")
    metrics = simulation.run()
    stats = simulation.router.router_stats
    assert metrics.completions >= params.total_completions
    assert stats.site_failures == 1
    assert stats.site_recoveries == 1
