"""Property test: the incremental cycle detector vs the full-DFS oracle.

The ``DependencyGraph`` answers ``creates_cycle`` through an online
topological order (Pearce–Kelly); the old full-DFS primitives
(``reachable`` / ``find_cycle``) are kept precisely so this suite can
replay long random mutation sequences against both and require bit-equal
answers.  The sequences are *seeded* — ``random.Random(seed)`` instances
with hard-coded seeds, no global RNG, no time — so a failure replays
exactly from the seed printed in the assertion message.

Two layers are exercised:

* the scheduler discipline (ask ``creates_cycle`` first, never insert a
  cycle-closing edge): verdicts and the chosen deadlock victim (the
  requester) must agree with the oracle, and the order invariant must hold
  after every step;
* the test discipline (insert cycles deliberately): while back edges are
  recorded the queries must keep agreeing with the oracle, and once the
  cyclic episode ends the rebuilt order must be valid again.
"""

import random

from repro.core.dependency_graph import DependencyGraph, EdgeKind

_KINDS = (EdgeKind.WAIT_FOR, EdgeKind.COMMIT_DEPENDENCY)


class OracleGraph:
    """Mirror of the graph's topology with full-DFS answers only."""

    def __init__(self):
        self.successors = {}

    def add_node(self, node):
        self.successors.setdefault(node, set())

    def add_edge(self, source, target):
        if source == target:
            return
        self.add_node(source)
        self.add_node(target)
        self.successors[source].add(target)

    def remove_node(self, node):
        self.successors.pop(node, None)
        for targets in self.successors.values():
            targets.discard(node)

    def remove_all_edges_from(self, source):
        if source in self.successors:
            self.successors[source].clear()

    def reaches(self, start, goal):
        stack = list(self.successors.get(start, ()))
        seen = set()
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.successors.get(node, ()))
        return False

    def creates_cycle(self, source, targets):
        return any(
            target != source
            and target in self.successors
            and self.reaches(target, source)
            for target in targets
        )

    def has_cycle(self):
        return any(
            self.reaches(node, node) for node in list(self.successors)
        )


def _check_step(graph, oracle, context):
    """Invariants that must hold after every mutation."""
    if not graph._back_edges:
        assert graph.order_violations() == [], context
    for node in oracle.successors:
        assert set(graph.successors(node)) == oracle.successors[node], context
    assert graph.nodes() == set(oracle.successors), context


class TestSchedulerDiscipline:
    """Random runs that, like the scheduler, never insert a detected cycle."""

    def test_verdicts_and_victims_match_oracle(self):
        for seed in range(20):
            rng = random.Random(seed)
            graph = DependencyGraph()
            oracle = OracleGraph()
            next_node = 0
            live = []
            for step in range(300):
                context = f"seed={seed} step={step}"
                action = rng.random()
                if action < 0.30 or len(live) < 3:
                    next_node += 1
                    graph.add_node(next_node)
                    oracle.add_node(next_node)
                    live.append(next_node)
                elif action < 0.75:
                    # A blocking request: ask first, then either add the
                    # wait-for edges or abort the requester (the victim).
                    source = rng.choice(live)
                    targets = set(
                        rng.sample(live, k=min(len(live), rng.randint(1, 3)))
                    )
                    targets.discard(source)
                    verdict = graph.creates_cycle(source, targets)
                    assert verdict == oracle.creates_cycle(source, targets), context
                    if verdict:
                        # Victim choice: both sides abort the requester.
                        graph.remove_node(source)
                        oracle.remove_node(source)
                        live.remove(source)
                    else:
                        kind = rng.choice(_KINDS)
                        graph.add_edges(source, targets, kind)
                        for target in targets:
                            oracle.add_edge(source, target)
                        assert not graph._back_edges, context
                elif action < 0.88:
                    source = rng.choice(live)
                    graph.remove_edges_from(source)
                    oracle.remove_all_edges_from(source)
                else:
                    node = rng.choice(live)
                    graph.remove_node(node)
                    oracle.remove_node(node)
                    live.remove(node)
                _check_step(graph, oracle, context)
                # Reachability spot checks through the kept oracle method.
                if len(live) >= 2:
                    a, b = rng.sample(live, k=2)
                    assert graph.reachable(a, b) == oracle.reaches(a, b), context
            assert graph.find_cycle() is None, f"seed={seed}"

    def test_wait_edge_churn_keeps_order_valid(self):
        """The scheduler's refresh pattern: drop wait edges, re-add others."""
        for seed in (101, 202, 303):
            rng = random.Random(seed)
            graph = DependencyGraph()
            oracle = OracleGraph()
            nodes = list(range(1, 13))
            for node in nodes:
                graph.add_node(node)
                oracle.add_node(node)
            for step in range(400):
                context = f"seed={seed} step={step}"
                source = rng.choice(nodes)
                graph.remove_edges_from(source, EdgeKind.WAIT_FOR)
                oracle.remove_all_edges_from(source)
                targets = {
                    target
                    for target in rng.sample(nodes, k=rng.randint(1, 4))
                    if target != source
                }
                if graph.creates_cycle(source, targets):
                    assert oracle.creates_cycle(source, targets), context
                    continue
                assert not oracle.creates_cycle(source, targets), context
                graph.add_edges(source, targets, EdgeKind.WAIT_FOR)
                for target in targets:
                    oracle.add_edge(source, target)
                assert graph.order_violations() == [], context


class TestCyclicEpisodes:
    """Deliberately cyclic graphs: the fallback path and the order rebuild."""

    def test_queries_agree_while_cyclic(self):
        for seed in (7, 17, 27, 37):
            rng = random.Random(seed)
            graph = DependencyGraph()
            oracle = OracleGraph()
            nodes = list(range(1, 10))
            for node in nodes:
                graph.add_node(node)
                oracle.add_node(node)
            for step in range(200):
                context = f"seed={seed} step={step}"
                action = rng.random()
                if action < 0.55:
                    # Insert without asking — cycles allowed.
                    source, target = rng.sample(nodes, k=2)
                    graph.add_edge(source, target, rng.choice(_KINDS))
                    oracle.add_edge(source, target)
                elif action < 0.80:
                    source = rng.choice(nodes)
                    graph.remove_edges_from(source)
                    oracle.remove_all_edges_from(source)
                else:
                    node = rng.choice(nodes)
                    graph.remove_node(node)
                    oracle.remove_node(node)
                    graph.add_node(node)
                    oracle.add_node(node)
                assert graph.has_cycle() == oracle.has_cycle(), context
                source = rng.choice(nodes)
                targets = set(rng.sample(nodes, k=2)) - {source}
                assert graph.creates_cycle(source, targets) == (
                    oracle.creates_cycle(source, targets)
                ), context
                if len(nodes) >= 2:
                    a, b = rng.sample(nodes, k=2)
                    assert graph.reachable(a, b) == oracle.reaches(a, b), context
                if not graph._back_edges:
                    assert graph.order_violations() == [], context

    def test_order_rebuilt_after_cycle_removed(self):
        graph = DependencyGraph()
        graph.add_edge(1, 2, EdgeKind.WAIT_FOR)
        graph.add_edge(2, 3, EdgeKind.WAIT_FOR)
        graph.add_edge(3, 1, EdgeKind.WAIT_FOR)  # closes the cycle
        assert graph._back_edges
        assert graph.has_cycle()
        graph.remove_edges_from(3, EdgeKind.WAIT_FOR)
        assert not graph._back_edges
        assert not graph.has_cycle()
        assert graph.order_violations() == []
        # The fast path is live again and still correct: 1 -> 2 -> 3 remains,
        # so a request 3 -> 1 would close the cycle but 1 -> 3 would not.
        assert graph.creates_cycle(3, {1})
        assert not graph.creates_cycle(1, {3})

    def test_order_rebuilt_after_cyclic_node_removed(self):
        graph = DependencyGraph()
        graph.add_edge(1, 2, EdgeKind.WAIT_FOR)
        graph.add_edge(2, 3, EdgeKind.WAIT_FOR)
        graph.add_edge(3, 1, EdgeKind.COMMIT_DEPENDENCY)
        assert graph._back_edges
        graph.remove_node(3)
        assert not graph._back_edges
        assert graph.order_violations() == []
        assert not graph.creates_cycle(1, {2})  # 2 has no path back to 1
        assert graph.creates_cycle(2, {1})      # 1 -> 2 survived the removal
        graph.add_edge(4, 1, EdgeKind.WAIT_FOR)
        assert graph.creates_cycle(1, {4})      # 4 -> 1 makes 1 -> 4 cyclic
