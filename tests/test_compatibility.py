"""Unit tests for compatibility tables (Answer, RelationTable, CompatibilitySpec)."""

import pytest

from repro.core.compatibility import Answer, CompatibilitySpec, ConflictClass, RelationTable
from repro.core.errors import SpecificationError
from repro.core.specification import Invocation
from repro.adts import TableType


class TestAnswer:
    def test_yes_holds_regardless_of_parameters(self):
        assert Answer.YES.holds(same_parameter=True)
        assert Answer.YES.holds(same_parameter=False)

    def test_no_never_holds(self):
        assert not Answer.NO.holds(same_parameter=True)
        assert not Answer.NO.holds(same_parameter=False)

    def test_yes_sp_requires_same_parameter(self):
        assert Answer.YES_SP.holds(same_parameter=True)
        assert not Answer.YES_SP.holds(same_parameter=False)

    def test_yes_dp_requires_different_parameter(self):
        assert not Answer.YES_DP.holds(same_parameter=True)
        assert Answer.YES_DP.holds(same_parameter=False)

    def test_is_unconditional(self):
        assert Answer.YES.is_unconditional
        assert Answer.NO.is_unconditional
        assert not Answer.YES_SP.is_unconditional
        assert not Answer.YES_DP.is_unconditional

    def test_no_implies_everything(self):
        for other in Answer:
            assert Answer.NO.implies(other)

    def test_everything_implies_yes(self):
        for answer in Answer:
            assert answer.implies(Answer.YES)

    def test_yes_does_not_imply_qualified_entries(self):
        assert not Answer.YES.implies(Answer.YES_SP)
        assert not Answer.YES.implies(Answer.NO)

    def test_qualified_entries_do_not_imply_each_other(self):
        assert not Answer.YES_SP.implies(Answer.YES_DP)
        assert not Answer.YES_DP.implies(Answer.YES_SP)

    def test_str_uses_paper_labels(self):
        assert str(Answer.YES_SP) == "Yes-SP"
        assert str(Answer.NO) == "No"


def make_table(default=Answer.NO):
    return RelationTable.from_rows(
        name="demo",
        operations=("a", "b"),
        rows={
            "a": [Answer.YES, Answer.YES_DP],
            "b": [Answer.NO, Answer.YES_SP],
        },
        default=default,
    )


class TestRelationTable:
    def test_from_rows_round_trips_entries(self):
        table = make_table()
        assert table.answer("a", "a") is Answer.YES
        assert table.answer("a", "b") is Answer.YES_DP
        assert table.answer("b", "a") is Answer.NO
        assert table.answer("b", "b") is Answer.YES_SP

    def test_missing_entry_uses_default(self):
        table = RelationTable(name="sparse", operations=("a", "b"), entries={})
        assert table.answer("a", "b") is Answer.NO

    def test_from_rows_rejects_wrong_row_length(self):
        with pytest.raises(SpecificationError):
            RelationTable.from_rows("bad", ("a", "b"), {"a": [Answer.YES]})

    def test_entries_must_reference_known_operations(self):
        with pytest.raises(SpecificationError):
            RelationTable(
                name="bad",
                operations=("a",),
                entries={("a", "zzz"): Answer.YES},
            )

    def test_holds_unconditional(self):
        table = make_table()
        assert table.holds(Invocation("a", (1,)), Invocation("a", (2,)))
        assert not table.holds(Invocation("b", (1,)), Invocation("a", (1,)))

    def test_holds_parameter_dependent_without_spec_uses_args(self):
        table = make_table()
        # (a, b) is Yes-DP: holds only for different argument tuples.
        assert table.holds(Invocation("a", (1,)), Invocation("b", (2,)))
        assert not table.holds(Invocation("a", (1,)), Invocation("b", (1,)))

    def test_holds_uses_spec_conflict_parameter(self):
        table_type = TableType()
        tables = table_type.compatibility()
        same_key = tables.commutativity.holds(
            Invocation("insert", ("k", "x")), Invocation("modify", ("k", "y")), table_type
        )
        different_key = tables.commutativity.holds(
            Invocation("insert", ("k1", "x")), Invocation("modify", ("k2", "y")), table_type
        )
        assert not same_key
        assert different_key

    def test_as_dict_is_dense(self):
        table = make_table()
        assert len(table.as_dict()) == 4

    def test_count(self):
        table = make_table()
        assert table.count(Answer.YES) == 1
        assert table.count(Answer.YES, Answer.YES_SP, Answer.YES_DP) == 3

    def test_render_contains_operations_and_entries(self):
        text = make_table().render("demo table")
        assert "demo table" in text
        assert "Requested" in text
        assert "Yes-DP" in text

    def test_equality_is_structural(self):
        assert make_table() == make_table()
        other = RelationTable.from_rows(
            "other",
            ("a", "b"),
            {"a": [Answer.NO, Answer.NO], "b": [Answer.NO, Answer.NO]},
        )
        assert make_table() != other


class TestCompatibilitySpec:
    def test_operations_property(self, set_type):
        spec = set_type.compatibility()
        assert set(spec.operations) == {"insert", "delete", "member"}

    def test_mismatched_tables_rejected(self):
        commutativity = RelationTable(name="c", operations=("a",), entries={})
        recoverability = RelationTable(name="r", operations=("b",), entries={})
        with pytest.raises(SpecificationError):
            CompatibilitySpec("broken", commutativity, recoverability)

    def test_classify_commutative(self, set_type):
        spec = set_type.compatibility()
        result = spec.classify(Invocation("insert", (1,)), Invocation("insert", (2,)), set_type)
        assert result is ConflictClass.COMMUTATIVE

    def test_classify_recoverable(self, set_type):
        spec = set_type.compatibility()
        # insert after a member of the same element: not commutative, recoverable.
        result = spec.classify(Invocation("insert", (1,)), Invocation("member", (1,)), set_type)
        assert result is ConflictClass.RECOVERABLE

    def test_classify_conflict(self, set_type):
        spec = set_type.compatibility()
        # member after a delete of the same element is neither.
        result = spec.classify(Invocation("member", (1,)), Invocation("delete", (1,)), set_type)
        assert result is ConflictClass.CONFLICT

    def test_commute_and_recoverable_helpers(self, stack_type):
        spec = stack_type.compatibility()
        push1, push2 = Invocation("push", (1,)), Invocation("push", (2,))
        assert not spec.commute(push1, push2, stack_type)
        assert spec.recoverable(push1, push2, stack_type)

    def test_render_mentions_both_tables(self, stack_type):
        text = stack_type.compatibility().render()
        assert "Commutativity for stack" in text
        assert "Recoverability for stack" in text
