"""Regression tests pinning the hot-path caches to naive reference code.

Two structures got fast paths for the figure benchmarks:

* :meth:`repro.core.dependency_graph.DependencyGraph.creates_cycle` memoises
  per-node reachable sets, invalidated on edge/node mutation;
* :meth:`repro.core.object_manager.ObjectManager.classify_request` classifies
  against per-(operation, parameter) groups with a memoised pair table
  instead of walking the full uncommitted log.

These tests replay seeded random workloads and compare every answer against
a from-scratch naive implementation, so a stale cache or a broken index shows
up as a direct mismatch.
"""

import random

import pytest

from repro.adts import PageType, SetType, StackType
from repro.core.dependency_graph import DependencyGraph, EdgeKind
from repro.core.object_manager import ObjectManager
from repro.core.policy import ConflictPolicy


# ----------------------------------------------------------------------
# DependencyGraph.creates_cycle vs naive BFS
# ----------------------------------------------------------------------
def naive_edges(graph):
    """Plain successor mapping rebuilt from the graph's public edge list."""
    successors = {}
    for edge in graph.edges():
        successors.setdefault(edge.source, set()).add(edge.target)
    return successors


def naive_reachable(successors, start, goal):
    seen, stack = set(), [start]
    while stack:
        node = stack.pop()
        if node == goal:
            return True
        if node in seen:
            continue
        seen.add(node)
        stack.extend(successors.get(node, ()))
    return False


def naive_creates_cycle(graph, source, targets):
    successors = naive_edges(graph)
    return any(
        target != source and naive_reachable(successors, target, source)
        for target in targets
    )


@pytest.mark.parametrize("seed", [1, 7, 42, 1234, 99991])
def test_creates_cycle_matches_naive_check_on_random_mutations(seed):
    rng = random.Random(seed)
    graph = DependencyGraph()
    nodes = list(range(12))
    kinds = (EdgeKind.WAIT_FOR, EdgeKind.COMMIT_DEPENDENCY)
    for _ in range(400):
        action = rng.random()
        source = rng.choice(nodes)
        if action < 0.45:
            graph.add_edge(source, rng.choice(nodes), rng.choice(kinds))
        elif action < 0.60:
            graph.remove_edges_from(source, rng.choice((None,) + kinds))
        elif action < 0.72:
            graph.remove_node(source)
        else:
            targets = set(rng.sample(nodes, rng.randint(1, 4)))
            # add the query nodes first, as the scheduler's begin() does
            graph.add_node(source)
            for target in targets:
                graph.add_node(target)
            expected = naive_creates_cycle(graph, source, targets)
            assert graph.creates_cycle(source, targets) == expected, (
                f"seed={seed}: creates_cycle({source}, {sorted(targets)}) diverged"
            )


@pytest.mark.parametrize("seed", [3, 17, 2024])
def test_reachable_matches_naive_check_on_random_mutations(seed):
    rng = random.Random(seed)
    graph = DependencyGraph()
    nodes = list(range(10))
    for _ in range(300):
        action = rng.random()
        if action < 0.5:
            graph.add_edge(rng.choice(nodes), rng.choice(nodes), EdgeKind.WAIT_FOR)
        elif action < 0.65:
            graph.remove_node(rng.choice(nodes))
        else:
            start, goal = rng.choice(nodes), rng.choice(nodes)
            graph.add_node(start)
            graph.add_node(goal)
            successors = naive_edges(graph)
            assert graph.reachable(start, goal) == (
                start == goal or naive_reachable(successors, start, goal)
            )


# ----------------------------------------------------------------------
# ObjectManager.classify_request vs a naive full-log scan
# ----------------------------------------------------------------------
def naive_classify_request(manager, invocation, transaction_id, policy):
    """The pre-index implementation: walk every uncommitted event."""
    from repro.core.compatibility import ConflictClass
    from repro.core.policy import effective_class

    conflicting, recoverable = set(), set()
    for event in manager.uncommitted:
        if event.transaction_id == transaction_id:
            continue
        pairwise = effective_class(
            policy, manager.compatibility.classify(invocation, event.invocation, manager.spec)
        )
        if pairwise is ConflictClass.CONFLICT:
            conflicting.add(event.transaction_id)
            recoverable.discard(event.transaction_id)
        elif pairwise is ConflictClass.RECOVERABLE:
            if event.transaction_id not in conflicting:
                recoverable.add(event.transaction_id)
    return conflicting, recoverable


SAMPLE_INVOCATIONS = {
    "page": PageType().sample_invocations("read") + PageType().sample_invocations("write"),
    "stack": (
        StackType().sample_invocations("push")
        + StackType().sample_invocations("pop")
        + StackType().sample_invocations("top")
    ),
    "set": (
        SetType().sample_invocations("insert")
        + SetType().sample_invocations("delete")
        + SetType().sample_invocations("member")
    ),
}


@pytest.mark.parametrize("type_name,spec_factory", [
    ("page", PageType),
    ("stack", StackType),
    ("set", SetType),
])
@pytest.mark.parametrize("seed", [5, 21, 777])
def test_classify_request_matches_naive_scan(type_name, spec_factory, seed):
    rng = random.Random(seed)
    spec = spec_factory()
    manager = ObjectManager(name="O", spec=spec, materialize_state=False)
    invocations = list(SAMPLE_INVOCATIONS[type_name])
    policies = (ConflictPolicy.COMMUTATIVITY, ConflictPolicy.RECOVERABILITY)
    sequence = 0
    live = []
    for _ in range(250):
        action = rng.random()
        if action < 0.55 or not live:
            tid = rng.randint(1, 8)
            sequence += 1
            manager.execute(rng.choice(invocations), tid, sequence)
            if tid not in live:
                live.append(tid)
        elif action < 0.70:
            tid = rng.choice(live)
            manager.remove_transaction(tid, commit=rng.random() < 0.5)
            live.remove(tid)
        else:
            requested = rng.choice(invocations)
            requester = rng.randint(1, 8)
            for policy in policies:
                expected = naive_classify_request(manager, requested, requester, policy)
                result = manager.classify_request(requested, requester, policy)
                assert (result.conflicting, result.recoverable) == expected, (
                    f"seed={seed} {type_name}: classification diverged for "
                    f"{requested} by T{requester} under {policy}"
                )
        assert manager.live_transactions() == {
            event.transaction_id for event in manager.uncommitted
        }
