"""Tests for the strict two-phase-locking backend.

The 2PL backend is the classical page-level baseline the paper measures its
recoverability protocol against: shared locks for read-only operations,
exclusive locks for everything else, all held until the owner terminates,
FIFO waiting, and deadlock detection through the scheduler's shared wait-for
graph.
"""

import pytest

from repro.adts import PageType, SetType, StackType
from repro.core.backends import (
    LockMode,
    SemanticBackend,
    TwoPhaseLockingBackend,
    make_backend,
)
from repro.core.policy import ConflictPolicy
from repro.core.scheduler import AbortReason, Scheduler
from repro.core.serializability import ObjectUniverse, is_log_sound, is_serializable
from repro.core.specification import Invocation
from repro.core.transaction import TransactionStatus
from repro.sim.params import SimulationParameters
from repro.sim.simulator import run_simulation


def locking_scheduler(*objects):
    scheduler = Scheduler(policy=ConflictPolicy.TWO_PHASE_LOCKING)
    for name, spec in objects:
        scheduler.register_object(name, spec)
    return scheduler


class TestBackendSelection:
    def test_policy_selects_the_locking_backend(self):
        scheduler = Scheduler(policy=ConflictPolicy.TWO_PHASE_LOCKING)
        assert isinstance(scheduler.backend, TwoPhaseLockingBackend)

    def test_semantic_policies_select_the_semantic_backend(self):
        for policy in (ConflictPolicy.COMMUTATIVITY, ConflictPolicy.RECOVERABILITY):
            assert isinstance(make_backend(policy), SemanticBackend)

    def test_explicit_backend_instance_overrides_the_policy(self):
        backend = TwoPhaseLockingBackend()
        scheduler = Scheduler(policy=ConflictPolicy.RECOVERABILITY, backend=backend)
        assert scheduler.backend is backend
        assert backend.scheduler is scheduler

    def test_backend_instances_cannot_be_shared_between_schedulers(self):
        """Backends carry per-run state (the lock table); sharing one across
        schedulers would leak phantom locks into the next run."""
        from repro.core.errors import ReproError

        backend = TwoPhaseLockingBackend()
        Scheduler(backend=backend)
        with pytest.raises(ReproError):
            Scheduler(backend=backend)

    def test_lock_modes_follow_read_only_flags(self):
        scheduler = locking_scheduler(("S", StackType()))
        backend = scheduler.backend
        manager = scheduler.object("S")
        assert backend.required_mode(manager, Invocation("top")) is LockMode.SHARED
        assert backend.required_mode(manager, Invocation("push", (1,))) is LockMode.EXCLUSIVE
        assert backend.required_mode(manager, Invocation("pop")) is LockMode.EXCLUSIVE


class TestLockConflictBlocking:
    def test_shared_locks_are_compatible(self):
        scheduler = locking_scheduler(("P", PageType()))
        t1, t2 = scheduler.begin(), scheduler.begin()
        assert scheduler.perform(t1.tid, "P", "read").executed
        assert scheduler.perform(t2.tid, "P", "read").executed

    def test_writer_blocks_behind_readers(self):
        scheduler = locking_scheduler(("P", PageType()))
        t1, t2 = scheduler.begin(), scheduler.begin()
        assert scheduler.perform(t1.tid, "P", "read").executed
        handle = scheduler.perform(t2.tid, "P", "write", 7)
        assert handle.blocked
        assert scheduler.waiting_for(t2.tid) == {t1.tid}

    def test_reader_blocks_behind_writer(self):
        scheduler = locking_scheduler(("P", PageType()))
        t1, t2 = scheduler.begin(), scheduler.begin()
        assert scheduler.perform(t1.tid, "P", "write", 7).executed
        assert scheduler.perform(t2.tid, "P", "read").blocked

    def test_recoverable_pair_blocks_under_2pl_but_not_recoverability(self):
        """write/write is recoverable for pages — 2PL blocks it anyway."""
        locking = locking_scheduler(("P", PageType()))
        t1, t2 = locking.begin(), locking.begin()
        assert locking.perform(t1.tid, "P", "write", 1).executed
        assert locking.perform(t2.tid, "P", "write", 2).blocked

        semantic = Scheduler(policy=ConflictPolicy.RECOVERABILITY)
        semantic.register_object("P", PageType())
        t1, t2 = semantic.begin(), semantic.begin()
        assert semantic.perform(t1.tid, "P", "write", 1).executed
        assert semantic.perform(t2.tid, "P", "write", 2).executed

    def test_locks_are_strict_released_only_at_commit(self):
        scheduler = locking_scheduler(("P", PageType()))
        t1, t2 = scheduler.begin(), scheduler.begin()
        assert scheduler.perform(t1.tid, "P", "write", 3).executed
        handle = scheduler.perform(t2.tid, "P", "read")
        assert handle.blocked
        scheduler.commit(t1.tid)
        assert handle.executed
        assert handle.value == 3

    def test_abort_releases_locks_and_grants_waiters(self):
        scheduler = locking_scheduler(("P", PageType()))
        t1, t2 = scheduler.begin(), scheduler.begin()
        assert scheduler.perform(t1.tid, "P", "write", 3).executed
        handle = scheduler.perform(t2.tid, "P", "read")
        scheduler.abort(t1.tid)
        assert handle.executed
        assert handle.value == 0  # the aborted write was undone

    def test_same_transaction_reacquires_and_upgrades_freely(self):
        scheduler = locking_scheduler(("P", PageType()))
        t1 = scheduler.begin()
        assert scheduler.perform(t1.tid, "P", "read").executed
        assert scheduler.perform(t1.tid, "P", "write", 9).executed
        assert scheduler.perform(t1.tid, "P", "read").value == 9
        assert scheduler.commit(t1.tid) is TransactionStatus.COMMITTED

    def test_fifo_fairness_reader_does_not_overtake_queued_writer(self):
        scheduler = locking_scheduler(("P", PageType()))
        t1, t2, t3 = scheduler.begin(), scheduler.begin(), scheduler.begin()
        assert scheduler.perform(t1.tid, "P", "read").executed
        assert scheduler.perform(t2.tid, "P", "write", 1).blocked
        # A fair scheduler queues the reader behind the blocked writer.
        assert scheduler.perform(t3.tid, "P", "read").blocked


class TestDeadlockDetection:
    def test_cross_object_deadlock_aborts_the_closing_requester(self):
        scheduler = locking_scheduler(("A", PageType()), ("B", PageType()))
        t1, t2 = scheduler.begin(), scheduler.begin()
        assert scheduler.perform(t1.tid, "A", "write", 1).executed
        assert scheduler.perform(t2.tid, "B", "write", 2).executed
        assert scheduler.perform(t1.tid, "B", "write", 3).blocked
        handle = scheduler.perform(t2.tid, "A", "write", 4)
        assert handle.aborted
        assert handle.abort_reason is AbortReason.DEADLOCK
        assert scheduler.transaction(t2.tid).status is TransactionStatus.ABORTED
        # The victim's locks were released, so T1's queued write went through.
        assert scheduler.transaction(t1.tid).status is TransactionStatus.ACTIVE
        assert scheduler.object_state("B") == 3

    def test_upgrade_deadlock_is_detected(self):
        scheduler = locking_scheduler(("P", PageType()))
        t1, t2 = scheduler.begin(), scheduler.begin()
        assert scheduler.perform(t1.tid, "P", "read").executed
        assert scheduler.perform(t2.tid, "P", "read").executed
        assert scheduler.perform(t1.tid, "P", "write", 1).blocked
        handle = scheduler.perform(t2.tid, "P", "write", 2)
        assert handle.aborted and handle.abort_reason is AbortReason.DEADLOCK
        # T1's upgrade is granted once the victim's shared lock is gone.
        assert scheduler.transaction(t1.tid).status is TransactionStatus.ACTIVE
        assert scheduler.object_state("P") == 1
        assert scheduler.stats.deadlock_aborts == 1


class TestCommitProtocol:
    def test_commit_is_always_immediate_no_pseudo_commit(self):
        scheduler = locking_scheduler(("P", PageType()))
        t1 = scheduler.begin()
        scheduler.perform(t1.tid, "P", "write", 5)
        assert scheduler.commit(t1.tid) is TransactionStatus.COMMITTED
        assert scheduler.stats.pseudo_commits == 0
        assert scheduler.committed_state("P") == 5

    def test_no_commit_dependency_edges_are_ever_created(self):
        scheduler = locking_scheduler(("P", PageType()))
        transactions = [scheduler.begin() for _ in range(4)]
        for index, transaction in enumerate(transactions):
            scheduler.perform(transaction.tid, "P", "write", index)
            scheduler.commit(transaction.tid)
        assert scheduler.stats.commit_dependency_edges == 0
        assert scheduler.stats.commits == 4


# ----------------------------------------------------------------------
# Backend equivalence on the paper's worked sequences (Section 3.2)
# ----------------------------------------------------------------------
PAPER_SEQUENCES = {
    "sequence-1": (
        (("X", SetType()),),
        [
            (1, "X", Invocation("insert", (3,))),
            (2, "X", Invocation("member", (3,))),
            (1, "X", Invocation("insert", (7,))),
            (2, "X", Invocation("delete", (3,))),
        ],
    ),
    "sequence-2": (
        (("X", SetType()), ("Y", SetType())),
        [
            (2, "X", Invocation("member", (3,))),
            (1, "X", Invocation("insert", (3,))),
            (1, "Y", Invocation("insert", (4,))),
            (2, "Y", Invocation("delete", (5,))),
        ],
    ),
    "sequence-3": (
        (("S", StackType()), ("X", SetType())),
        [
            (1, "S", Invocation("push", (4,))),
            (1, "X", Invocation("member", (3,))),
            (2, "S", Invocation("push", (2,))),
            (2, "X", Invocation("insert", (3,))),
        ],
    ),
}


def drive_sequence(policy, objects, steps):
    """Drive one logical script through a scheduler, simulator-style.

    Each transaction executes its steps in script order; a step whose request
    blocks is parked (the scheduler owns it) and the transaction's remaining
    steps wait until the grant re-activates it.  Once a transaction has run
    all its steps it commits; commits release conflicts and cascade grants.
    Returns the scheduler (all transactions terminated).
    """
    scheduler = Scheduler(policy=policy)
    for name, spec in objects:
        scheduler.register_object(name, spec)
    ids: dict = {}
    pending: dict = {}
    for label, object_name, invocation in steps:
        if label not in ids:
            ids[label] = scheduler.begin().tid
            pending[label] = []
        pending[label].append((object_name, invocation))

    def pump(label):
        """Issue a transaction's next steps while it stays ACTIVE."""
        transaction = scheduler.transaction(ids[label])
        while pending[label] and transaction.status is TransactionStatus.ACTIVE:
            object_name, invocation = pending[label].pop(0)
            scheduler.submit(ids[label], object_name, invocation)

    # First pass in script order preserves the paper's interleaving.
    for label, object_name, invocation in steps:
        transaction = scheduler.transaction(ids[label])
        if transaction.status is TransactionStatus.ACTIVE and pending[label] and (
            pending[label][0] == (object_name, invocation)
        ):
            pending[label].pop(0)
            scheduler.submit(ids[label], object_name, invocation)

    # Commit/grant rounds until everything terminated.
    for _ in range(3 * len(ids) + 3):
        for label, tid in ids.items():
            pump(label)
            transaction = scheduler.transaction(tid)
            if transaction.status is TransactionStatus.ACTIVE and not pending[label]:
                scheduler.commit(tid)
        if all(
            scheduler.transaction(tid).status.is_terminated for tid in ids.values()
        ):
            break
    return scheduler


class TestBackendEquivalenceOnPaperSequences:
    @pytest.mark.parametrize("sequence_id", sorted(PAPER_SEQUENCES))
    @pytest.mark.parametrize(
        "policy",
        [ConflictPolicy.RECOVERABILITY, ConflictPolicy.TWO_PHASE_LOCKING],
        ids=lambda p: p.value,
    )
    def test_histories_are_sound_and_serializable(self, sequence_id, policy):
        objects, steps = PAPER_SEQUENCES[sequence_id]
        scheduler = drive_sequence(policy, objects, steps)
        for tid in list(scheduler.transactions):
            assert scheduler.transaction(tid).status is TransactionStatus.COMMITTED
        universe = ObjectUniverse(specs=dict(objects))
        log = scheduler.history
        assert is_log_sound(log, universe)
        assert is_serializable(log, universe)

    @pytest.mark.parametrize("sequence_id", sorted(PAPER_SEQUENCES))
    def test_both_backends_reach_the_same_committed_state(self, sequence_id):
        objects, steps = PAPER_SEQUENCES[sequence_id]
        states = {}
        for policy in (ConflictPolicy.RECOVERABILITY, ConflictPolicy.TWO_PHASE_LOCKING):
            scheduler = drive_sequence(policy, objects, steps)
            states[policy] = {
                name: scheduler.committed_state(name) for name, _ in objects
            }
        assert states[ConflictPolicy.RECOVERABILITY] == states[ConflictPolicy.TWO_PHASE_LOCKING]


# ----------------------------------------------------------------------
# End-to-end: the Figure 4 workload under both backends
# ----------------------------------------------------------------------
class TestFigure4WorkloadOrdering:
    def test_2pl_completes_no_more_work_than_recoverability(self):
        """The paper's qualitative ordering, at unit-test scale: under data
        contention the strict-2PL baseline's throughput must not exceed the
        recoverability protocol's."""
        base = dict(
            database_size=40, num_terminals=60, mpl_level=30, total_completions=150, seed=5
        )
        locking = run_simulation(
            SimulationParameters(policy=ConflictPolicy.TWO_PHASE_LOCKING, **base), "readwrite"
        )
        recoverability = run_simulation(
            SimulationParameters(policy=ConflictPolicy.RECOVERABILITY, **base), "readwrite"
        )
        assert locking.throughput <= recoverability.throughput
        assert locking.pseudo_commits == 0
        assert recoverability.pseudo_commits > 0

    def test_2pl_tracks_the_commutativity_baseline_on_the_readwrite_model(self):
        """Page-level S/X locking encodes the same pairwise conflicts as the
        commutativity tables for pages, so the two baselines should track
        each other closely.  They are not identical: a lock holder re-enters
        and upgrades its own lock freely, while the semantic baseline makes a
        repeat request queue behind fair waiters."""
        base = dict(database_size=60, mpl_level=20, total_completions=120, seed=9)
        locking = run_simulation(
            SimulationParameters(policy=ConflictPolicy.TWO_PHASE_LOCKING, **base), "readwrite"
        )
        commutativity = run_simulation(
            SimulationParameters(policy=ConflictPolicy.COMMUTATIVITY, **base), "readwrite"
        )
        assert locking.throughput == pytest.approx(commutativity.throughput, rel=0.15)

    def test_adt_workload_runs_under_2pl(self):
        params = SimulationParameters(
            database_size=60,
            num_terminals=30,
            mpl_level=10,
            total_completions=60,
            policy=ConflictPolicy.TWO_PHASE_LOCKING,
            seed=11,
        )
        metrics = run_simulation(params, "adt")
        assert metrics.completions >= params.total_completions
        assert metrics.pseudo_commits == 0
