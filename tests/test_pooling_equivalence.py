"""Request pooling must be invisible — except to stale references.

The slab/freelist pass recycles :class:`RequestHandle` and
:class:`PendingRequest` objects through per-scheduler
:class:`~repro.core.pool.ObjectPool` freelists: handles are retired to the
pool when their transaction reaches a terminal state, pending wrappers when
their blocked request is granted, dropped or aborted.  Three properties keep
that honest:

* **Pinned equivalence** — a pooled run must be bit-identical to an
  unpooled run on the CRC32-derived seeded streams, for every backend and
  for centralized and multi-site configurations alike.  Pooling reuses
  boxes; it must never change a scheduling decision.
* **Staleness is loud** — a retired handle's generation counter advances
  and its status becomes ``RECYCLED``; any later read of the recycled
  reference raises :class:`~repro.core.errors.StaleHandleError` instead of
  silently serving another transaction's outcome.
* **Freelists survive reset()** — a reused simulation keeps recycling the
  same boxes across sweep points, and the reused runs stay pinned to the
  freshly built ones.
"""

import pytest

from repro.core.errors import StaleHandleError
from repro.core.pool import ObjectPool
from repro.core.policy import ConflictPolicy
from repro.core.requests import RequestStatus
from repro.core.scheduler import Scheduler
from repro.sim.params import SimulationParameters
from repro.sim.simulator import Simulation, run_simulation

POLICIES = {
    "commutativity": ConflictPolicy.COMMUTATIVITY,
    "recoverability": ConflictPolicy.RECOVERABILITY,
    "two-phase-locking": ConflictPolicy.TWO_PHASE_LOCKING,
}

CASES = [
    (policy_name, sites) for policy_name in sorted(POLICIES) for sites in (1, 3)
]


def point_params(policy: ConflictPolicy, sites: int) -> SimulationParameters:
    overrides = dict(
        mpl_level=12, total_completions=120, database_size=100, seed=9,
        policy=policy,
    )
    if sites > 1:
        overrides.update(site_count=sites, replication="copies")
    return SimulationParameters(**overrides)


def signature(metrics):
    """Every deterministic observable of a run, rounding only float noise."""
    return dict(
        metrics.counters(),
        simulated_time=round(metrics.simulated_time, 12),
        response_time_total=round(metrics.response_time_total, 12),
    )


class TestPooledUnpooledEquivalence:
    @pytest.mark.parametrize("policy_name,sites", CASES)
    def test_pooled_matches_unpooled(self, policy_name, sites):
        params = point_params(POLICIES[policy_name], sites)
        pooled = run_simulation(params, workload_kind="readwrite", pool_requests=True)
        unpooled = run_simulation(params, workload_kind="readwrite", pool_requests=False)
        assert signature(pooled) == signature(unpooled)

    def test_pooled_matches_unpooled_on_adt_workload(self):
        # ADT objects exercise the blocked-request (PendingRequest) pool
        # harder: pops and deletes block behind pushes and inserts.
        params = SimulationParameters(
            mpl_level=10, total_completions=80, database_size=80, seed=5,
            policy=ConflictPolicy.RECOVERABILITY,
        )
        pooled = run_simulation(params, workload_kind="adt", pool_requests=True)
        unpooled = run_simulation(params, workload_kind="adt", pool_requests=False)
        assert signature(pooled) == signature(unpooled)

    def test_pooled_simulation_actually_recycles(self):
        params = point_params(ConflictPolicy.RECOVERABILITY, 1)
        simulation = Simulation(params, workload_kind="readwrite")
        simulation.run()
        pool = simulation.router.sites[0].scheduler.handle_pool
        assert pool.released > 0
        assert pool.reused > 0
        # Boxes sitting in the freelist = releases not yet re-acquired.
        assert len(pool.free) == pool.released - pool.reused
        # Acquisitions never outnumber what was created plus what came back.
        assert pool.reused <= pool.released


class TestStaleHandleDetection:
    def _scheduler(self) -> Scheduler:
        from repro.adts import StackType

        scheduler = Scheduler(
            policy=ConflictPolicy.RECOVERABILITY, pool_requests=True
        )
        scheduler.register_object("S", StackType())
        return scheduler

    def test_retired_handle_raises_on_every_predicate(self):
        scheduler = self._scheduler()
        transaction = scheduler.begin()
        handle = scheduler.perform(transaction.tid, "S", "push", 1)
        assert handle.executed
        scheduler.commit(transaction.tid)
        assert handle.status is RequestStatus.RECYCLED
        for predicate in ("executed", "blocked", "aborted"):
            with pytest.raises(StaleHandleError):
                getattr(handle, predicate)

    def test_generation_advances_on_each_recycle(self):
        scheduler = self._scheduler()
        transaction = scheduler.begin()
        handle = scheduler.perform(transaction.tid, "S", "push", 1)
        generation = handle.generation
        scheduler.commit(transaction.tid)
        assert handle.generation == generation + 1

    def test_stale_error_names_the_last_transaction(self):
        scheduler = self._scheduler()
        transaction = scheduler.begin()
        handle = scheduler.perform(transaction.tid, "S", "push", 1)
        scheduler.commit(transaction.tid)
        with pytest.raises(StaleHandleError) as excinfo:
            handle.executed
        assert excinfo.value.transaction_id == transaction.tid
        assert excinfo.value.generation == handle.generation

    def test_reused_handle_serves_the_new_transaction(self):
        scheduler = self._scheduler()
        first = scheduler.begin()
        stale = scheduler.perform(first.tid, "S", "push", 1)
        scheduler.commit(first.tid)
        second = scheduler.begin()
        fresh = scheduler.perform(second.tid, "S", "push", 2)
        # The freelist handed the same box to the new transaction; the new
        # reference works, and it is exactly the recycled object.
        assert fresh is stale
        assert fresh.executed
        assert fresh.transaction_id == second.tid

    def test_aborted_transaction_retires_its_handles(self):
        scheduler = self._scheduler()
        transaction = scheduler.begin()
        handle = scheduler.perform(transaction.tid, "S", "push", 1)
        scheduler.abort(transaction.tid)
        assert handle.status is RequestStatus.RECYCLED
        with pytest.raises(StaleHandleError):
            handle.aborted


class TestPoolAccounting:
    def test_counters_and_len(self):
        pool: ObjectPool[object] = ObjectPool()
        assert pool.acquire() is None  # empty freelist: caller constructs
        assert pool.created == 1  # the miss is counted as a construction
        box = object()
        pool.release(box)
        assert len(pool) == 1 and pool.released == 1
        assert pool.acquire() is box
        assert pool.reused == 1 and len(pool) == 0

    def test_as_dict_surfaces_all_counters(self):
        pool: ObjectPool[object] = ObjectPool()
        pool.release(object())
        stats = pool.as_dict()
        assert stats == {"created": 0, "reused": 0, "released": 1, "free": 1}


class TestResetReuseWithPooling:
    @pytest.mark.parametrize("policy_name,sites", CASES)
    def test_reset_reuse_stays_pinned_with_pooling(self, policy_name, sites):
        # One constructed, pooled simulation swept across two parameter
        # points and back must reproduce three freshly built pooled runs bit
        # for bit — while the schedulers' freelists carry over (reset()
        # deliberately keeps them: recycled boxes have no run state).
        params = point_params(POLICIES[policy_name], sites)
        other = params.replace(mpl_level=8, total_completions=80)
        fresh_first = run_simulation(params, workload_kind="readwrite")
        fresh_other = run_simulation(other, workload_kind="readwrite")

        simulation = Simulation(params, workload_kind="readwrite")
        first = simulation.run()
        released_first = sum(
            site.scheduler.handle_pool.released for site in simulation.router.sites
        )
        simulation.reset(other)
        second = simulation.run()
        simulation.reset(params)
        third = simulation.run()
        released_third = sum(
            site.scheduler.handle_pool.released for site in simulation.router.sites
        )

        assert signature(first) == signature(fresh_first)
        assert signature(second) == signature(fresh_other)
        assert signature(third) == signature(fresh_first)
        assert released_third > released_first  # freelists kept recycling
