"""Tests for the unified wait-for / commit-dependency graph."""


from repro.core.dependency_graph import DependencyGraph, Edge, EdgeKind


def make_chain(*pairs):
    graph = DependencyGraph()
    for source, target in pairs:
        graph.add_edge(source, target, EdgeKind.COMMIT_DEPENDENCY)
    return graph


class TestNodesAndEdges:
    def test_add_node_is_idempotent(self):
        graph = DependencyGraph()
        graph.add_node(1)
        graph.add_node(1)
        assert graph.nodes() == {1}

    def test_add_edge_creates_missing_nodes(self):
        graph = make_chain((1, 2))
        assert graph.nodes() == {1, 2}
        assert graph.has_edge(1, 2)
        assert graph.has_edge(1, 2, EdgeKind.COMMIT_DEPENDENCY)
        assert not graph.has_edge(1, 2, EdgeKind.WAIT_FOR)

    def test_self_loops_are_ignored(self):
        graph = DependencyGraph()
        graph.add_edge(1, 1, EdgeKind.WAIT_FOR)
        assert graph.edge_count() == 0

    def test_two_kinds_on_same_pair(self):
        graph = DependencyGraph()
        graph.add_edge(1, 2, EdgeKind.WAIT_FOR)
        graph.add_edge(1, 2, EdgeKind.COMMIT_DEPENDENCY)
        assert graph.edge_count() == 2
        assert graph.out_degree(1) == 1
        assert graph.out_degree(1, EdgeKind.WAIT_FOR) == 1

    def test_successors_predecessors(self):
        graph = make_chain((1, 2), (1, 3))
        assert graph.successors(1) == {2, 3}
        assert graph.predecessors(2) == {1}
        assert graph.predecessors(1) == set()

    def test_edges_listing(self):
        graph = make_chain((1, 2))
        assert graph.edges() == [Edge(1, 2, EdgeKind.COMMIT_DEPENDENCY)]

    def test_add_edges_bulk(self):
        graph = DependencyGraph()
        graph.add_edges(1, [2, 3, 1], EdgeKind.WAIT_FOR)
        assert graph.successors(1) == {2, 3}


class TestRemoval:
    def test_remove_node_returns_former_predecessors(self):
        graph = make_chain((1, 3), (2, 3), (3, 4))
        former = graph.remove_node(3)
        assert former == {1, 2}
        assert graph.nodes() == {1, 2, 4}
        assert graph.out_degree(1) == 0
        assert graph.predecessors(4) == set()

    def test_remove_missing_node_is_noop(self):
        graph = DependencyGraph()
        assert graph.remove_node(99) == set()

    def test_remove_edges_from_by_kind(self):
        graph = DependencyGraph()
        graph.add_edge(1, 2, EdgeKind.WAIT_FOR)
        graph.add_edge(1, 3, EdgeKind.COMMIT_DEPENDENCY)
        graph.remove_edges_from(1, EdgeKind.WAIT_FOR)
        assert not graph.has_edge(1, 2)
        assert graph.has_edge(1, 3)

    def test_remove_all_edges_from(self):
        graph = make_chain((1, 2), (1, 3))
        graph.remove_edges_from(1)
        assert graph.out_degree(1) == 0
        assert graph.nodes() == {1, 2, 3}


class TestCycles:
    def test_reachable(self):
        graph = make_chain((1, 2), (2, 3))
        assert graph.reachable(1, 3)
        assert not graph.reachable(3, 1)
        assert not graph.reachable(1, 99)

    def test_creates_cycle_detects_back_path(self):
        graph = make_chain((2, 1))
        assert graph.creates_cycle(1, {2})
        assert not graph.creates_cycle(2, {1})  # the edge already exists; no new cycle

    def test_creates_cycle_ignores_self(self):
        graph = DependencyGraph()
        graph.add_node(1)
        assert not graph.creates_cycle(1, {1})

    def test_find_cycle_none_when_acyclic(self):
        graph = make_chain((1, 2), (2, 3), (1, 3))
        assert graph.find_cycle() is None
        assert not graph.has_cycle()

    def test_find_cycle_returns_cycle_nodes(self):
        graph = make_chain((1, 2), (2, 3), (3, 1))
        cycle = graph.find_cycle()
        assert cycle is not None
        assert set(cycle) == {1, 2, 3}
        assert graph.has_cycle()

    def test_mixed_kind_cycle_is_detected(self):
        graph = DependencyGraph()
        graph.add_edge(1, 2, EdgeKind.WAIT_FOR)
        graph.add_edge(2, 1, EdgeKind.COMMIT_DEPENDENCY)
        assert graph.has_cycle()

    def test_zero_out_degree_nodes(self):
        graph = make_chain((1, 2), (3, 2))
        assert graph.zero_out_degree_nodes() == {2}
        assert graph.zero_out_degree_nodes(candidates=[1, 2]) == {2}

    def test_len_counts_nodes(self):
        graph = make_chain((1, 2), (2, 3))
        assert len(graph) == 3
